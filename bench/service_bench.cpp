// service_bench — load, fault-injection, and crash-recovery harness for
// the agedtrd service (ROADMAP item 2; docs/OPERATIONS.md "Running
// agedtrd").
//
// Phase 1 (in-process): floods one Daemon with 10^4..10^5 mixed requests
// from concurrent closed-loop workers — warm-cache evaluates, searches,
// pings, malformed bytes, schema violations, flaky/poisoned faults, tiny
// deadlines, and an open-loop batch-class burst that drives admission
// control — then checks the exactly-once contract: every future is
// fulfilled with a status from the reply taxonomy, the counts add up, and
// the daemon's own counters agree. Reports p50/p99 latency, QPS, shed
// rate, and engine cache hit rate; --metrics also dumps the
// MetricsRegistry report.
//
// Phase 2 (--daemon <path-to-agedtrd>): spawns the real binary on a UNIX
// socket with a journal, acknowledges a batch of searches, SIGKILLs the
// daemon mid-run, restarts it on the same journal, and requires every
// acknowledged search to replay bit-identically (`replayed: true`). Also
// exercises a slow client (frame written in delayed chunks) and a
// malformed frame against the live socket. Skipped with a notice when
// --daemon is empty (the ctest smoke passes $<TARGET_FILE:agedtrd>).
//
// Exit status: 0 when every check holds, 1 on any violation.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <future>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "agedtr/service/daemon.hpp"
#include "agedtr/service/json.hpp"
#include "agedtr/service/protocol.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"
#include "agedtr/util/thread_annotations.hpp"

#if !defined(_WIN32)
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#endif

namespace {

using agedtr::service::Daemon;
using agedtr::service::DaemonOptions;
using agedtr::service::DaemonStats;
using agedtr::service::Json;

// ---------------------------------------------------------------------------
// Request builders: a small pool of distinct scenarios so the warm-engine
// cache sees both misses (first touch) and a high hit rate afterwards.
// ---------------------------------------------------------------------------

struct ScenarioShape {
  int m1;
  int m2;
  double mean1;
  double mean2;
};

constexpr ScenarioShape kShapes[] = {
    {4, 2, 2.0, 1.0},
    {5, 3, 1.5, 1.0},
    {6, 2, 2.5, 0.5},
    {3, 3, 1.0, 1.0},
};
constexpr std::size_t kShapeCount = sizeof(kShapes) / sizeof(kShapes[0]);

Json scenario_json(const ScenarioShape& shape) {
  Json scenario = Json::object();
  Json servers = Json::array();
  Json s1 = Json::object();
  s1.set("tasks", Json::number(shape.m1));
  s1.set("service_mean", Json::number(shape.mean1));
  servers.push_back(std::move(s1));
  Json s2 = Json::object();
  s2.set("tasks", Json::number(shape.m2));
  s2.set("service_mean", Json::number(shape.mean2));
  servers.push_back(std::move(s2));
  scenario.set("servers", std::move(servers));
  scenario.set("transfer_mean", Json::number(1.0));
  return scenario;
}

Json evaluate_request(const std::string& id, std::size_t shape_index,
                      int l12) {
  const ScenarioShape& shape = kShapes[shape_index % kShapeCount];
  Json request = Json::object();
  request.set("id", Json::string(id));
  request.set("kind", Json::string("evaluate"));
  request.set("scenario", scenario_json(shape));
  Json policy = Json::array();
  Json row0 = Json::array();
  row0.push_back(Json::number(0));
  row0.push_back(Json::number(l12 % (shape.m1 + 1)));
  policy.push_back(std::move(row0));
  Json row1 = Json::array();
  row1.push_back(Json::number(0));
  row1.push_back(Json::number(0));
  policy.push_back(std::move(row1));
  request.set("policy", std::move(policy));
  return request;
}

Json search_request(const std::string& id, std::size_t shape_index) {
  Json request = Json::object();
  request.set("id", Json::string(id));
  request.set("kind", Json::string("search"));
  request.set("scenario", scenario_json(kShapes[shape_index % kShapeCount]));
  return request;
}

/// The deterministic phase-1 request mix, by global request number.
std::string mixed_request(std::size_t i) {
  const std::string id = "req-" + std::to_string(i);
  if (i % 97 == 0) return "this is not json at all (" + id + ")";
  if (i % 89 == 0) {
    Json bad = Json::object();
    bad.set("id", Json::string(id));
    bad.set("kind", Json::string("teleport"));
    return bad.dump();
  }
  if (i % 83 == 0) {
    Json flaky = evaluate_request(id, i, static_cast<int>(i));
    flaky.set("fault", Json::string("flaky:1"));
    return flaky.dump();
  }
  if (i % 79 == 0) {
    Json rushed = evaluate_request(id, i, static_cast<int>(i));
    rushed.set("deadline_ms", Json::number(0.001));
    return rushed.dump();
  }
  if (i % 71 == 0) return search_request(id, i).dump();
  if (i % 13 == 0) {
    Json ping = Json::object();
    ping.set("id", Json::string(id));
    ping.set("kind", Json::string("ping"));
    return ping.dump();
  }
  return evaluate_request(id, i, static_cast<int>(i)).dump();
}

// ---------------------------------------------------------------------------
// Phase 1: in-process load with exactly-once accounting.
// ---------------------------------------------------------------------------

struct Phase1Tally {
  agedtr::Mutex mutex;
  std::map<std::string, std::size_t> statuses AGEDTR_GUARDED_BY(mutex);
  std::vector<double> latencies AGEDTR_GUARDED_BY(mutex);
  std::size_t bad_replies AGEDTR_GUARDED_BY(mutex) = 0;
};

/// Negative `seconds` counts the reply without a latency sample (open-loop
/// submissions measure admission, not service, so they would skew p50).
void record_reply(Phase1Tally& tally, const std::string& reply_text,
                  double seconds) {
  std::string status;
  try {
    const Json reply = Json::parse(reply_text);
    const Json* found = reply.find("status");
    if (found != nullptr && found->is_string()) status = found->as_string();
  } catch (const std::exception&) {
    // fall through: counted as a bad reply below
  }
  agedtr::MutexLock lock(&tally.mutex);
  if (status.empty()) {
    ++tally.bad_replies;
    return;
  }
  ++tally.statuses[status];
  if (seconds >= 0.0) tally.latencies.push_back(seconds);
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[index];
}

int run_phase1(std::size_t total, std::size_t workers,
               const std::string& journal_path) {
  DaemonOptions options;
  options.conv.cells = 1u << 11;  // bench-sized lattice
  options.max_eval_seconds = 30.0;
  options.queue_capacity = 512;
  options.batch_watermark = 64;
  options.degrade_watermark = 0;
  options.enable_test_faults = true;
  options.max_retries = 1;
  options.backoff_initial_seconds = 0.0005;
  options.poison_strikes = 2;
  if (!journal_path.empty()) {
    const std::filesystem::path parent =
        std::filesystem::path(journal_path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    std::remove(journal_path.c_str());
    options.journal_path = journal_path;
  }
  Daemon daemon(options);
  Phase1Tally tally;
  std::size_t issued = 0;

  const auto start = std::chrono::steady_clock::now();

  // Poison storyline: the same always_fail work three times. Two
  // quarantines earn two strikes; the third is fast-rejected at admission.
  for (int k = 0; k < 3; ++k) {
    Json poison = evaluate_request("poison-" + std::to_string(k), 0, 1);
    poison.set("fault", Json::string("always_fail"));
    const auto sent = std::chrono::steady_clock::now();
    const std::string reply = daemon.submit(poison.dump()).get();
    record_reply(tally, reply,
                 std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - sent)
                     .count());
    ++issued;
  }

  // Closed-loop workers over the deterministic mix. Worker 0 is the slow
  // client: it sleeps between requests to model a straggling caller.
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (std::size_t i = w; i < total; i += workers) {
        if (w == 0 && i % 257 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        const auto sent = std::chrono::steady_clock::now();
        const std::string reply = daemon.submit(mixed_request(i)).get();
        record_reply(tally, reply,
                     std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - sent)
                         .count());
      }
    });
  }

  // Open-loop burst of batch-class work to drive the queue over the
  // batch watermark while the workers keep it busy.
  std::vector<std::future<std::string>> burst;
  const std::size_t burst_size = std::min<std::size_t>(total / 10, 2000);
  for (std::size_t b = 0; b < burst_size; ++b) {
    Json request = evaluate_request("burst-" + std::to_string(b),
                                    b, static_cast<int>(b));
    request.set("class", Json::string("batch"));
    burst.push_back(daemon.submit(request.dump()));
  }
  for (std::future<std::string>& f : burst) {
    record_reply(tally, f.get(), -1.0);
  }
  for (std::thread& t : pool) t.join();
  issued += total + burst_size;

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const DaemonStats stats = daemon.stats_snapshot();
  daemon.stop();

  // --- Accounting ---------------------------------------------------------
  std::map<std::string, std::size_t> statuses;
  std::vector<double> latencies;
  std::size_t bad_replies = 0;
  {
    agedtr::MutexLock lock(&tally.mutex);
    statuses = tally.statuses;
    latencies = std::move(tally.latencies);
    bad_replies = tally.bad_replies;
  }
  std::size_t answered = bad_replies;
  for (const auto& [status, count] : statuses) answered += count;
  std::sort(latencies.begin(), latencies.end());

  std::cout << "phase 1: " << issued << " requests, " << workers
            << " workers, " << elapsed << " s ("
            << static_cast<double>(issued) / elapsed << " QPS)\n";
  std::cout << "  latency p50 " << percentile(latencies, 0.50) * 1e3
            << " ms, p99 " << percentile(latencies, 0.99) * 1e3 << " ms\n";
  std::cout << "  statuses:";
  for (const auto& [status, count] : statuses) {
    std::cout << " " << status << "=" << count;
  }
  std::cout << "\n";
  const double shed_rate =
      static_cast<double>(stats.shed) / static_cast<double>(issued);
  const std::size_t cache_touches =
      stats.engine_cache_hits + stats.engine_cache_misses;
  const double hit_rate =
      cache_touches == 0
          ? 0.0
          : static_cast<double>(stats.engine_cache_hits) /
                static_cast<double>(cache_touches);
  std::cout << "  shed rate " << shed_rate * 100.0
            << " %, engine cache hit rate " << hit_rate * 100.0 << " %\n";

  bool ok = true;
  if (answered != issued) {
    std::cout << "ERROR: exactly-once violated: " << answered
              << " replies for " << issued << " requests\n";
    ok = false;
  }
  if (bad_replies != 0) {
    std::cout << "ERROR: " << bad_replies
              << " replies were unparsable or carried no status\n";
    ok = false;
  }
  if (stats.completed != stats.accepted) {
    std::cout << "ERROR: " << stats.accepted << " accepted but "
              << stats.completed << " completed — a request was dropped\n";
    ok = false;
  }
  if (statuses["overloaded"] != stats.shed) {
    std::cout << "ERROR: client saw " << statuses["overloaded"]
              << " overloaded replies but the daemon shed " << stats.shed
              << "\n";
    ok = false;
  }
  // The poison storyline is deterministic: 2 quarantines then 1 fast-reject.
  if (statuses["failed"] < 2 || statuses["poisoned"] < 1) {
    std::cout << "ERROR: poison storyline missing (failed="
              << statuses["failed"] << ", poisoned=" << statuses["poisoned"]
              << ")\n";
    ok = false;
  }
  if (statuses["deadline_exceeded"] == 0) {
    std::cout << "ERROR: no deadline_exceeded replies despite expired "
                 "deadlines in the mix\n";
    ok = false;
  }
  if (statuses["invalid_request"] == 0) {
    std::cout << "ERROR: no invalid_request replies despite malformed "
                 "requests in the mix\n";
    ok = false;
  }
  std::cout << (ok ? "  exactly-once: OK\n" : "  exactly-once: FAILED\n");

  // Framing layer: one serial session with a malformed tail frame.
  {
    Daemon framed(options);
    std::stringstream in;
    agedtr::service::write_frame(in, mixed_request(1));
    in << "garbage-without-a-frame";
    std::stringstream out;
    framed.serve_stream(in, out);
    std::string payload;
    std::size_t frames = 0;
    bool saw_malformed = false;
    while (agedtr::service::read_frame(out, payload) ==
           agedtr::service::FrameStatus::kOk) {
      ++frames;
      const Json reply = Json::parse(payload);
      const Json* status = reply.find("status");
      saw_malformed = saw_malformed || (status != nullptr &&
                                        status->is_string() &&
                                        status->as_string() ==
                                            "malformed_frame");
    }
    framed.stop();
    if (frames != 2 || !saw_malformed) {
      std::cout << "ERROR: framed session expected one reply plus one "
                   "malformed_frame notice, got "
                << frames << " frames\n";
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Phase 2: kill -9 the real binary mid-run, restart, demand replay.
// ---------------------------------------------------------------------------

#if !defined(_WIN32)

bool write_all_fd(int fd, const char* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t wrote = ::write(fd, data + done, n - done);
    if (wrote <= 0) return false;
    done += static_cast<std::size_t>(wrote);
  }
  return true;
}

bool send_frame(int fd, const std::string& payload) {
  const std::string header = std::to_string(payload.size()) + "\n";
  return write_all_fd(fd, header.data(), header.size()) &&
         write_all_fd(fd, payload.data(), payload.size());
}

bool recv_frame(int fd, std::string& payload) {
  payload.clear();
  std::string digits;
  for (;;) {
    char c = 0;
    if (::read(fd, &c, 1) <= 0) return false;
    if (c == '\n') break;
    if (c < '0' || c > '9' || digits.size() > 18) return false;
    digits.push_back(c);
  }
  if (digits.empty()) return false;
  std::size_t length = 0;
  for (const char d : digits) {
    length = length * 10 + static_cast<std::size_t>(d - '0');
  }
  payload.resize(length);
  std::size_t done = 0;
  while (done < length) {
    const ssize_t got = ::read(fd, payload.data() + done, length - done);
    if (got <= 0) return false;
    done += static_cast<std::size_t>(got);
  }
  return true;
}

/// Connects to the daemon's socket, retrying while it boots.
int connect_with_retry(const std::string& path, int attempts) {
  for (int k = 0; k < attempts; ++k) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd >= 0) {
      sockaddr_un address{};
      address.sun_family = AF_UNIX;
      std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                    sizeof(address)) == 0) {
        return fd;
      }
      ::close(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return -1;
}

pid_t spawn_daemon(const std::string& binary, const std::string& socket_path,
                   const std::string& journal_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: exec the service binary.
  std::vector<std::string> args = {binary,
                                   "--socket", socket_path,
                                   "--journal", journal_path,
                                   "--lattice-cells", "2048",
                                   "--max-eval-seconds", "30"};
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(binary.c_str(), argv.data());
  std::perror("service_bench: execv agedtrd");
  ::_exit(127);
}

struct AckedSearch {
  std::string request;  // the re-sendable document (new id swapped in)
  double l12 = 0.0;
  double l21 = 0.0;
  double value = 0.0;
};

int run_phase2(const std::string& binary, std::size_t searches) {
  const std::string suffix = std::to_string(static_cast<long long>(::getpid()));
  const std::string socket_path = "/tmp/agedtr-service-bench-" + suffix +
                                  ".sock";
  const std::string journal_path = "/tmp/agedtr-service-bench-" + suffix +
                                   ".journal";
  std::remove(journal_path.c_str());

  std::cout << "phase 2: SIGKILL/restart against " << binary << "\n";
  pid_t pid = spawn_daemon(binary, socket_path, journal_path);
  if (pid < 0) {
    std::cout << "ERROR: fork failed\n";
    return 1;
  }
  int fd = connect_with_retry(socket_path, 200);
  if (fd < 0) {
    std::cout << "ERROR: could not connect to " << socket_path << "\n";
    ::kill(pid, SIGKILL);
    return 1;
  }

  bool ok = true;
  // Acknowledge a batch of distinct searches (each lands in the journal
  // before its reply is released), then SIGKILL with the run still "live".
  std::vector<AckedSearch> acked;
  for (std::size_t i = 0; i < searches; ++i) {
    // Distinct work per i: vary the service mean so every search is its
    // own journal entry.
    Json request = search_request("kr-" + std::to_string(i), 0);
    const_cast<Json*>(request.find("scenario"))
        ->set("transfer_mean", Json::number(1.0 + 0.125 * static_cast<double>(i)));
    std::string reply_text;
    if (!send_frame(fd, request.dump()) || !recv_frame(fd, reply_text)) {
      std::cout << "ERROR: search " << i << " got no reply\n";
      ok = false;
      break;
    }
    const Json reply = Json::parse(reply_text);
    if (reply.find("status")->as_string() != "ok" ||
        reply.find("replayed")->as_bool()) {
      std::cout << "ERROR: search " << i << " unexpected reply: "
                << reply_text << "\n";
      ok = false;
      break;
    }
    AckedSearch entry;
    request.set("id", Json::string("kr2-" + std::to_string(i)));
    entry.request = request.dump();
    entry.l12 = reply.find("l12")->as_number();
    entry.l21 = reply.find("l21")->as_number();
    entry.value = reply.find("value")->as_number();
    acked.push_back(entry);
  }
  // Mid-run murder: one more request goes on the wire and the daemon dies
  // before it can possibly be served.
  (void)send_frame(fd, search_request("kr-victim", 1).dump());
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  ::close(fd);

  // Restart on the same journal; every acknowledged search must replay
  // bit-identically.
  pid = spawn_daemon(binary, socket_path, journal_path);
  fd = connect_with_retry(socket_path, 200);
  if (fd < 0) {
    std::cout << "ERROR: could not reconnect after restart\n";
    if (pid > 0) ::kill(pid, SIGKILL);
    return 1;
  }
  std::size_t replayed = 0;
  for (std::size_t i = 0; i < acked.size(); ++i) {
    std::string reply_text;
    if (!send_frame(fd, acked[i].request) || !recv_frame(fd, reply_text)) {
      std::cout << "ERROR: replay " << i << " got no reply\n";
      ok = false;
      break;
    }
    const Json reply = Json::parse(reply_text);
    const bool was_replayed = reply.find("replayed") != nullptr &&
                              reply.find("replayed")->as_bool();
    const bool identical =
        reply.find("status")->as_string() == "ok" &&
        reply.find("l12")->as_number() == acked[i].l12 &&
        reply.find("l21")->as_number() == acked[i].l21 &&
        reply.find("value")->as_number() == acked[i].value;
    if (!was_replayed || !identical) {
      std::cout << "ERROR: acknowledged search " << i
                << " did not replay bit-identically: " << reply_text << "\n";
      ok = false;
    } else {
      ++replayed;
    }
  }
  std::cout << "  " << replayed << "/" << acked.size()
            << " acknowledged searches replayed bit-identically after "
               "SIGKILL\n";

  // Slow client: a valid frame dribbled out in delayed chunks still gets
  // its answer (the per-connection IO timeout is per read, not per frame).
  {
    const std::string doc = search_request("slow-1", 2).dump();
    const std::string frame = std::to_string(doc.size()) + "\n" + doc;
    const std::size_t third = frame.size() / 3;
    bool sent = write_all_fd(fd, frame.data(), third);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    sent = sent && write_all_fd(fd, frame.data() + third, third);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    sent = sent &&
           write_all_fd(fd, frame.data() + 2 * third, frame.size() - 2 * third);
    std::string reply_text;
    if (!sent || !recv_frame(fd, reply_text) ||
        Json::parse(reply_text).find("status")->as_string() != "ok") {
      std::cout << "ERROR: slow client was not answered\n";
      ok = false;
    } else {
      std::cout << "  slow client answered\n";
    }
  }

  // Malformed frame on a fresh connection: one structured notice, then the
  // daemon closes that connection and keeps serving others.
  {
    const int bad_fd = connect_with_retry(socket_path, 20);
    if (bad_fd >= 0) {
      std::string reply_text;
      if (!write_all_fd(bad_fd, "xyzzy\n", 6) ||
          !recv_frame(bad_fd, reply_text) ||
          Json::parse(reply_text).find("status")->as_string() !=
              "malformed_frame") {
        std::cout << "ERROR: malformed frame not answered with "
                     "malformed_frame\n";
        ok = false;
      } else {
        std::cout << "  malformed frame rejected in a structured way\n";
      }
      ::close(bad_fd);
    }
  }

  // Clean shutdown through the protocol.
  Json shutdown = Json::object();
  shutdown.set("id", Json::string("bye"));
  shutdown.set("kind", Json::string("shutdown"));
  std::string reply_text;
  (void)send_frame(fd, shutdown.dump());
  (void)recv_frame(fd, reply_text);
  ::close(fd);
  ::waitpid(pid, nullptr, 0);
  std::remove(journal_path.c_str());
  std::remove(socket_path.c_str());
  return ok ? 0 : 1;
}

#else  // _WIN32

int run_phase2(const std::string&, std::size_t) {
  std::cout << "phase 2 skipped: no fork/AF_UNIX on this platform\n";
  return 0;
}

#endif

}  // namespace

int main(int argc, char** argv) {
  using namespace agedtr;

  CliParser cli(
      "load, fault-injection, and SIGKILL-recovery harness for agedtrd");
  cli.add_option("requests", "50000", "phase-1 request count");
  cli.add_option("workers", "8", "phase-1 closed-loop client threads");
  cli.add_option("daemon", "",
                 "path to the agedtrd binary for the kill/restart phase "
                 "(empty skips phase 2)");
  cli.add_option("searches", "10", "phase-2 searches acknowledged per life");
  cli.add_option("journal", "bench_results/service_bench.journal",
                 "phase-1 journal path (empty disables journaling)");
  cli.add_option("metrics", "",
                 "write the MetricsRegistry report here at exit");
  cli.add_flag("smoke", "CI-sized run: 10^4 requests, small search batch");

  try {
    if (!cli.parse(argc, argv)) return 0;
    const bool smoke = cli.get_flag("smoke");
    const std::size_t requests =
        smoke ? 10000 : static_cast<std::size_t>(cli.get_int("requests"));
    const std::size_t workers =
        static_cast<std::size_t>(cli.get_int("workers"));
    const std::size_t searches =
        smoke ? 8 : static_cast<std::size_t>(cli.get_int("searches"));
    AGEDTR_REQUIRE(requests >= 1 && workers >= 1,
                   "service_bench: --requests and --workers must be >= 1");

    metrics::ScopedExport metrics_export(cli.get_string("metrics"));

    int status = run_phase1(requests, workers, cli.get_string("journal"));

    const std::string daemon_binary = cli.get_string("daemon");
    if (daemon_binary.empty()) {
      std::cout << "phase 2 skipped: pass --daemon <path-to-agedtrd> to "
                   "exercise SIGKILL recovery against the real binary\n";
    } else {
      const int phase2 = run_phase2(daemon_binary, searches);
      if (phase2 != 0) status = phase2;
    }
    return status;
  } catch (const std::exception& e) {
    std::cerr << "service_bench: " << e.what() << "\n";
    return 1;
  }
}
