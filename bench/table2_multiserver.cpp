// Table II reproduction: a heterogeneous five-server DCS (M = 200 tasks,
// service means 5..1 s, failure means 1000..400 s, severe network delay).
// For every distribution model, Algorithm 1 devises DTR policies that
// (a) minimize the average execution time (reliable servers) and
// (b) maximize the service reliability; each policy — and, for comparison,
// the policy devised under the *exponential* (Markovian) model — is then
// evaluated by Monte-Carlo simulation (centers of 95% confidence intervals,
// as the paper reports). The benchmark row evaluates the optimal *static*
// allocation (tasks already in place, found by the allocation search),
// matching the paper's "initial allocation is actually the optimal
// allocation" row.
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "agedtr/policy/decision_policy.hpp"
#include "agedtr/policy/allocation_search.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/util/checkpoint.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/stopwatch.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"
#include "paper_setup.hpp"

using namespace agedtr;
using dist::ModelFamily;

namespace {

std::string policy_to_string(const core::DtrPolicy& p) {
  std::string out;
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (i != j && p(i, j) > 0) {
        if (!out.empty()) out += " ";
        out += std::to_string(i + 1) + ">" + std::to_string(j + 1) + ":" +
               std::to_string(p(i, j));
      }
    }
  }
  return out.empty() ? "(none)" : out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("table2: multi-server DTR via Algorithm 1 (Table II)");
  cli.add_option("reps", "10000", "Monte-Carlo replications per entry");
  cli.add_option("cells", "32768", "lattice cells for the 2-server solves");
  cli.add_option("seed", "2010", "Monte-Carlo seed");
  cli.add_option("checkpoint", "",
                 "journal each completed table entry (one per model family "
                 "and part, plus the benchmark rows) to this file; empty = "
                 "off");
  cli.add_flag("resume", "replay entries already journaled in --checkpoint");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));

  Stopwatch watch;
  ThreadPool& pool = ThreadPool::global();
  core::ConvolutionOptions conv;
  conv.cells = static_cast<std::size_t>(cli.get_int("cells"));
  sim::MonteCarloOptions mc;
  mc.replications = static_cast<std::size_t>(cli.get_int("reps"));
  mc.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  mc.pool = &pool;

  std::unique_ptr<Checkpoint> journal;
  if (!cli.get_string("checkpoint").empty()) {
    journal = std::make_unique<Checkpoint>(
        cli.get_string("checkpoint"),
        "table2 reps=" + std::to_string(mc.replications) +
            " cells=" + std::to_string(conv.cells) +
            " seed=" + std::to_string(mc.seed),
        cli.get_flag("resume"));
  }
  // Replay-or-compute one table entry packed as U+001F-joined fields.
  const auto entry =
      [&](const std::string& key,
          const std::function<std::vector<std::string>()>& compute) {
        if (!journal) return compute();
        return split_fields(
            journal->run_unit(key, [&] { return join_fields(compute()); }));
      };

  // ---------- part (a): average execution time, reliable servers ----------
  Table mean_table({"model", "policy (age-dependent)",
                    "T-bar, age-dependent policy (s)",
                    "T-bar, exponential policy (s)", "rel. difference"});
  for (ModelFamily family : dist::all_model_families()) {
    const std::vector<std::string> row = entry(
        "mean " + dist::model_family_name(family), [&] {
          const core::DcsScenario scenario =
              bench::five_server_scenario(family, /*failures=*/false);
          policy::Algorithm1Options age_opts;
          age_opts.objective = policy::Objective::kMeanExecutionTime;
          age_opts.max_iterations = 4;
          age_opts.conv = conv;
          age_opts.pool = &pool;
          policy::Algorithm1Options markov_opts = age_opts;
          markov_opts.markovian = true;
          const auto age = policy::Algorithm1Policy(age_opts).devise(scenario);
          const auto markov =
              policy::Algorithm1Policy(markov_opts).devise(scenario);
          const auto m_age = sim::run_monte_carlo(scenario, age.policy, mc);
          const auto m_markov =
              sim::run_monte_carlo(scenario, markov.policy, mc);
          return std::vector<std::string>{
              policy_to_string(age.policy),
              format_double(m_age.mean_completion_time.center, 17),
              format_double(m_markov.mean_completion_time.center, 17)};
        });
    const double t_age = std::stod(row.at(1));
    const double t_markov = std::stod(row.at(2));
    mean_table.begin_row()
        .cell(dist::model_family_name(family))
        .cell(row.at(0))
        .cell(t_age)
        .cell(t_markov)
        .cell(format_double(100.0 * (t_markov - t_age) / t_age, 3) + "%");
  }
  // Benchmark row: optimal static allocation (no transfers needed).
  {
    const std::vector<std::string> row = entry("mean benchmark", [&] {
      const core::DcsScenario scenario = bench::five_server_scenario(
          ModelFamily::kPareto1, /*failures=*/false);
      policy::AllocationSearchOptions alloc_opts;
      alloc_opts.objective = policy::Objective::kMeanExecutionTime;
      const auto alloc = policy::optimal_allocation(scenario, alloc_opts);
      core::DcsScenario placed = scenario;
      for (std::size_t j = 0; j < 5; ++j) {
        placed.servers[j].initial_tasks = alloc.allocation[j];
      }
      const auto m = sim::run_monte_carlo(placed, core::DtrPolicy(5), mc);
      std::string alloc_str;
      for (int a : alloc.allocation) {
        alloc_str += (alloc_str.empty() ? "" : ",") + std::to_string(a);
      }
      return std::vector<std::string>{
          alloc_str, format_double(m.mean_completion_time.center, 17)};
    });
    mean_table.begin_row()
        .cell("benchmark: optimal allocation (Pareto 1)")
        .cell("m* = (" + row.at(0) + ")")
        .cell(std::stod(row.at(1)))
        .cell("-")
        .cell("-");
  }
  std::cout << "=== Table II (a) | average execution time | severe delay | "
               "M = 200 on 5 servers ===\n";
  mean_table.print(std::cout);
  mean_table.write_csv_file("table2_mean.csv");

  // ---------- part (b): service reliability ----------
  Table rel_table({"model", "policy (age-dependent)",
                   "R-inf, age-dependent policy",
                   "R-inf, exponential policy", "rel. difference"});
  for (ModelFamily family : dist::all_model_families()) {
    const std::vector<std::string> row = entry(
        "rel " + dist::model_family_name(family), [&] {
          const core::DcsScenario scenario =
              bench::five_server_scenario(family, /*failures=*/true);
          policy::Algorithm1Options age_opts;
          age_opts.objective = policy::Objective::kReliability;
          age_opts.criterion = policy::ReallocationCriterion::kReliability;
          age_opts.max_iterations = 4;
          age_opts.conv = conv;
          age_opts.pool = &pool;
          policy::Algorithm1Options markov_opts = age_opts;
          markov_opts.markovian = true;
          const auto age = policy::Algorithm1Policy(age_opts).devise(scenario);
          const auto markov =
              policy::Algorithm1Policy(markov_opts).devise(scenario);
          const auto m_age = sim::run_monte_carlo(scenario, age.policy, mc);
          const auto m_markov =
              sim::run_monte_carlo(scenario, markov.policy, mc);
          return std::vector<std::string>{
              policy_to_string(age.policy),
              format_double(m_age.reliability.center, 17),
              format_double(m_markov.reliability.center, 17)};
        });
    const double r_age = std::stod(row.at(1));
    const double r_markov = std::stod(row.at(2));
    rel_table.begin_row()
        .cell(dist::model_family_name(family))
        .cell(row.at(0))
        .cell(r_age)
        .cell(r_markov)
        .cell(format_double(
                  r_age > 1e-9 ? 100.0 * (r_age - r_markov) / r_age : 0.0,
                  3) +
              "%");
  }
  {
    const std::vector<std::string> row = entry("rel benchmark", [&] {
      const core::DcsScenario scenario = bench::five_server_scenario(
          ModelFamily::kPareto1, /*failures=*/true);
      policy::AllocationSearchOptions alloc_opts;
      alloc_opts.objective = policy::Objective::kReliability;
      const auto alloc = policy::optimal_allocation(scenario, alloc_opts);
      core::DcsScenario placed = scenario;
      for (std::size_t j = 0; j < 5; ++j) {
        placed.servers[j].initial_tasks = alloc.allocation[j];
      }
      const auto m = sim::run_monte_carlo(placed, core::DtrPolicy(5), mc);
      std::string alloc_str;
      for (int a : alloc.allocation) {
        alloc_str += (alloc_str.empty() ? "" : ",") + std::to_string(a);
      }
      return std::vector<std::string>{
          alloc_str, format_double(m.reliability.center, 17)};
    });
    rel_table.begin_row()
        .cell("benchmark: optimal allocation (Pareto 1)")
        .cell("m* = (" + row.at(0) + ")")
        .cell(std::stod(row.at(1)))
        .cell("-")
        .cell("-");
  }
  std::cout << "\n=== Table II (b) | service reliability | severe delay ===\n";
  rel_table.print(std::cout);
  rel_table.write_csv_file("table2_reliability.csv");

  std::cout << "\n(paper: exponential-model policies err by 5-45% at this "
               "scale)\nElapsed: "
            << format_double(watch.elapsed_seconds(), 3) << " s\n";
  if (journal) {
    std::cout << "checkpoint: " << journal->stats().hits << " of "
              << journal->size() << " entries replayed from "
              << journal->path() << "\n";
  }
  return 0;
}
