// Policy-search benchmark: Algorithm 1 on the Table II five-server system,
// timing three devise() configurations that produce bit-identical policies:
//
//   baseline — share_workspace=false: every 2-server subproblem solve
//              rebuilds its lattice discretizations from scratch (the
//              pre-engine per-solver cache behaviour);
//   cold     — one shared LatticeWorkspace per devise(): subproblems of the
//              same pair (and pairs sharing laws/grids) reuse each other's
//              lattice work;
//   warm     — a second devise() on the same workspace: all lattice state
//              is already resident, only the policy sweeps are recomputed.
//
// Emits BENCH_policy_search.json (timings, speedups, workspace counters) so
// the perf trajectory of the evaluation engine is tracked, and exits
// nonzero if the three devised policies ever diverge — the equivalence is
// the refactor's contract, not an aspiration.
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>

#include "agedtr/core/lattice_workspace.hpp"
#include "agedtr/policy/decision_policy.hpp"
#include "agedtr/util/checkpoint.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/stopwatch.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/thread_pool.hpp"
#include "agedtr/util/metrics.hpp"
#include "paper_setup.hpp"

using namespace agedtr;
using dist::ModelFamily;

namespace {

std::string policy_to_string(const core::DtrPolicy& p) {
  std::string out;
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (i != j && p(i, j) > 0) {
        if (!out.empty()) out += " ";
        out += std::to_string(i + 1) + ">" + std::to_string(j + 1) + ":" +
               std::to_string(p(i, j));
      }
    }
  }
  return out.empty() ? "(none)" : out;
}

bool same_policy(const core::DtrPolicy& a, const core::DtrPolicy& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a.size(); ++j) {
      if (a(i, j) != b(i, j)) return false;
    }
  }
  return true;
}

// Everything a journaled phase contributes to the report. The cold and warm
// passes form ONE unit: a warm pass replayed without its cold pass would run
// against an unwarmed workspace, so they complete (and journal) together.
struct PhaseRecord {
  std::string policy;
  int iterations = 0;
  bool converged = false;
  double seconds = 0.0;        // baseline / cold
  double warm_seconds = 0.0;   // shared unit only
  core::WorkspaceStats cold_stats;
  core::WorkspaceStats warm_stats;
};

std::string pack_phase(const PhaseRecord& p) {
  const auto f = [](double v) { return format_double(v, 17); };
  return join_fields(
      {p.policy, std::to_string(p.iterations), p.converged ? "1" : "0",
       f(p.seconds), f(p.warm_seconds),
       std::to_string(p.cold_stats.base_hits),
       std::to_string(p.cold_stats.base_misses),
       std::to_string(p.cold_stats.sum_hits),
       std::to_string(p.cold_stats.sum_misses),
       std::to_string(p.warm_stats.base_hits),
       std::to_string(p.warm_stats.base_misses),
       std::to_string(p.warm_stats.sum_hits),
       std::to_string(p.warm_stats.sum_misses),
       std::to_string(p.warm_stats.laws),
       std::to_string(p.warm_stats.bytes)});
}

PhaseRecord unpack_phase(const std::string& payload) {
  const std::vector<std::string> f = split_fields(payload);
  PhaseRecord p;
  p.policy = f.at(0);
  p.iterations = std::stoi(f.at(1));
  p.converged = f.at(2) == "1";
  p.seconds = std::stod(f.at(3));
  p.warm_seconds = std::stod(f.at(4));
  p.cold_stats.base_hits = std::stoull(f.at(5));
  p.cold_stats.base_misses = std::stoull(f.at(6));
  p.cold_stats.sum_hits = std::stoull(f.at(7));
  p.cold_stats.sum_misses = std::stoull(f.at(8));
  p.warm_stats.base_hits = std::stoull(f.at(9));
  p.warm_stats.base_misses = std::stoull(f.at(10));
  p.warm_stats.sum_hits = std::stoull(f.at(11));
  p.warm_stats.sum_misses = std::stoull(f.at(12));
  p.warm_stats.laws = std::stoull(f.at(13));
  p.warm_stats.bytes = std::stoull(f.at(14));
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "policy_search_bench: Algorithm 1 on the Table II five-server "
      "system, cold vs warm LatticeWorkspace vs per-solve baseline");
  cli.add_option("model", "exponential",
                 "distribution model family for every law");
  cli.add_option("cells", "4096", "lattice cells per 2-server solve");
  cli.add_option("iterations", "3", "Algorithm 1 iteration cap");
  cli.add_option("out", "BENCH_policy_search.json",
                 "where to write the JSON record");
  cli.add_option("checkpoint", "",
                 "journal completed phases to this file (crash-consistent; "
                 "empty = off)");
  cli.add_flag("resume", "replay phases already journaled in --checkpoint");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));

  const ModelFamily family = dist::parse_model_family(cli.get_string("model"));
  const core::DcsScenario scenario =
      bench::five_server_scenario(family, /*failures=*/false);
  ThreadPool& pool = ThreadPool::global();

  policy::Algorithm1Options options;
  options.objective = policy::Objective::kMeanExecutionTime;
  options.max_iterations = static_cast<int>(cli.get_int("iterations"));
  options.conv.cells = static_cast<std::size_t>(cli.get_int("cells"));
  options.pool = &pool;

  std::unique_ptr<Checkpoint> journal;
  if (!cli.get_string("checkpoint").empty()) {
    journal = std::make_unique<Checkpoint>(
        cli.get_string("checkpoint"),
        "policy_search model=" + dist::model_family_name(family) +
            " cells=" + std::to_string(options.conv.cells) +
            " iterations=" + std::to_string(options.max_iterations),
        cli.get_flag("resume"));
  }
  const auto run_phase = [&](const std::string& key,
                             const std::function<PhaseRecord()>& compute) {
    if (!journal) return compute();
    return unpack_phase(
        journal->run_unit(key, [&] { return pack_phase(compute()); }));
  };

  Stopwatch watch;

  // Baseline: a fresh private workspace per 2-server solve.
  const PhaseRecord baseline = run_phase("baseline", [&] {
    policy::Algorithm1Options baseline_options = options;
    baseline_options.share_workspace = false;
    watch.reset();
    const auto devised =
        policy::Algorithm1Policy(baseline_options).devise(scenario);
    PhaseRecord p;
    p.policy = policy_to_string(devised.policy);
    p.iterations = devised.iterations;
    p.converged = devised.converged;
    p.seconds = watch.elapsed_seconds();
    return p;
  });
  const double t_baseline = baseline.seconds;

  // Cold + warm: one shared workspace; the first devise() populates it, the
  // second reuses every lattice.
  const PhaseRecord shared = run_phase("shared", [&] {
    const auto workspace = std::make_shared<core::LatticeWorkspace>();
    policy::Algorithm1Options shared_options = options;
    shared_options.workspace = workspace;
    const policy::Algorithm1Policy shared_search(shared_options);
    PhaseRecord p;
    watch.reset();
    const auto cold = shared_search.devise(scenario);
    p.seconds = watch.elapsed_seconds();
    p.cold_stats = workspace->stats();
    watch.reset();
    const auto warm = shared_search.devise(scenario);
    p.warm_seconds = watch.elapsed_seconds();
    p.warm_stats = workspace->stats();
    p.policy = policy_to_string(cold.policy);
    p.iterations = cold.iterations;
    p.converged = cold.converged;
    if (!same_policy(cold.policy, warm.policy)) p.policy.clear();
    return p;
  });
  const double t_cold = shared.seconds;
  const double t_warm = shared.warm_seconds;
  const core::WorkspaceStats cold_stats = shared.cold_stats;
  const core::WorkspaceStats warm_stats = shared.warm_stats;

  if (shared.policy.empty() || baseline.policy != shared.policy) {
    std::cerr << "FAIL: devised policies diverge across configurations\n"
              << "  baseline: " << baseline.policy << "\n"
              << "  shared:   "
              << (shared.policy.empty() ? "(cold/warm diverged)"
                                        : shared.policy)
              << "\n";
    return EXIT_FAILURE;
  }

  const double speedup_cold = t_baseline / t_cold;
  const double speedup_warm = t_baseline / t_warm;

  std::cout << "=== policy search | " << dist::model_family_name(family)
            << " | M = 200 on 5 servers | cells = " << options.conv.cells
            << " ===\n"
            << "policy: " << shared.policy << " (" << shared.iterations
            << " iterations" << (shared.converged ? ", converged" : "")
            << ")\n\n";
  Table table({"configuration", "devise (s)", "speedup vs baseline",
               "cache hits", "cache misses"});
  table.begin_row()
      .cell("baseline (workspace per solve)")
      .cell(t_baseline)
      .cell("1.000x")
      .cell("-")
      .cell("-");
  table.begin_row()
      .cell("cold shared workspace")
      .cell(t_cold)
      .cell(format_double(speedup_cold, 3) + "x")
      .cell(static_cast<double>(cold_stats.hits()))
      .cell(static_cast<double>(cold_stats.misses()));
  table.begin_row()
      .cell("warm shared workspace")
      .cell(t_warm)
      .cell(format_double(speedup_warm, 3) + "x")
      .cell(static_cast<double>(warm_stats.hits() - cold_stats.hits()))
      .cell(static_cast<double>(warm_stats.misses() - cold_stats.misses()));
  table.print(std::cout);
  std::cout << "\nworkspace after warm pass: " << warm_stats.laws
            << " cached laws, " << warm_stats.bytes << " bytes\n";

  const std::string out_path = cli.get_string("out");
  {
    std::ofstream out(out_path);
    out.precision(6);
    out << "{\n"
        << "  \"bench\": \"policy_search\",\n"
        << "  \"model\": \"" << dist::model_family_name(family) << "\",\n"
        << "  \"cells\": " << options.conv.cells << ",\n"
        << "  \"iterations\": " << shared.iterations << ",\n"
        << "  \"converged\": " << (shared.converged ? "true" : "false")
        << ",\n"
        << "  \"policy\": \"" << shared.policy << "\",\n"
        << "  \"baseline_seconds\": " << t_baseline << ",\n"
        << "  \"cold_seconds\": " << t_cold << ",\n"
        << "  \"warm_seconds\": " << t_warm << ",\n"
        << "  \"speedup_cold\": " << speedup_cold << ",\n"
        << "  \"speedup_warm\": " << speedup_warm << ",\n"
        << "  \"workspace\": {\n"
        << "    \"base_hits\": " << warm_stats.base_hits << ",\n"
        << "    \"base_misses\": " << warm_stats.base_misses << ",\n"
        << "    \"sum_hits\": " << warm_stats.sum_hits << ",\n"
        << "    \"sum_misses\": " << warm_stats.sum_misses << ",\n"
        << "    \"laws\": " << warm_stats.laws << ",\n"
        << "    \"bytes\": " << warm_stats.bytes << "\n"
        << "  }\n"
        << "}\n";
  }
  std::cout << "wrote " << out_path << "\n";
  if (journal) {
    std::cout << "checkpoint: " << journal->stats().hits << " of "
              << journal->size() << " phases replayed from "
              << journal->path() << "\n";
  }

  if (warm_stats.hits() == 0) {
    std::cerr << "FAIL: shared workspace never served a hit\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
