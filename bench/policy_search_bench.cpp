// Policy-search benchmark: Algorithm 1 on the Table II five-server system,
// timing three devise() configurations that produce bit-identical policies:
//
//   baseline — share_workspace=false: every 2-server subproblem solve
//              rebuilds its lattice discretizations from scratch (the
//              pre-engine per-solver cache behaviour);
//   cold     — one shared LatticeWorkspace per devise(): subproblems of the
//              same pair (and pairs sharing laws/grids) reuse each other's
//              lattice work;
//   warm     — a second devise() on the same workspace: all lattice state
//              is already resident, only the policy sweeps are recomputed.
//
// Emits BENCH_policy_search.json (timings, speedups, workspace counters) so
// the perf trajectory of the evaluation engine is tracked, and exits
// nonzero if the three devised policies ever diverge — the equivalence is
// the refactor's contract, not an aspiration.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "agedtr/core/lattice_workspace.hpp"
#include "agedtr/policy/algorithm1.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/stopwatch.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/thread_pool.hpp"
#include "paper_setup.hpp"

using namespace agedtr;
using dist::ModelFamily;

namespace {

std::string policy_to_string(const core::DtrPolicy& p) {
  std::string out;
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (i != j && p(i, j) > 0) {
        if (!out.empty()) out += " ";
        out += std::to_string(i + 1) + ">" + std::to_string(j + 1) + ":" +
               std::to_string(p(i, j));
      }
    }
  }
  return out.empty() ? "(none)" : out;
}

bool same_policy(const core::DtrPolicy& a, const core::DtrPolicy& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a.size(); ++j) {
      if (a(i, j) != b(i, j)) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "policy_search_bench: Algorithm 1 on the Table II five-server "
      "system, cold vs warm LatticeWorkspace vs per-solve baseline");
  cli.add_option("model", "exponential",
                 "distribution model family for every law");
  cli.add_option("cells", "4096", "lattice cells per 2-server solve");
  cli.add_option("iterations", "3", "Algorithm 1 iteration cap");
  cli.add_option("out", "BENCH_policy_search.json",
                 "where to write the JSON record");
  if (!cli.parse(argc, argv)) return 0;

  const ModelFamily family = dist::parse_model_family(cli.get_string("model"));
  const core::DcsScenario scenario =
      bench::five_server_scenario(family, /*failures=*/false);
  ThreadPool& pool = ThreadPool::global();

  policy::Algorithm1Options options;
  options.objective = policy::Objective::kMeanExecutionTime;
  options.max_iterations = static_cast<int>(cli.get_int("iterations"));
  options.conv.cells = static_cast<std::size_t>(cli.get_int("cells"));
  options.pool = &pool;

  Stopwatch watch;

  // Baseline: a fresh private workspace per 2-server solve.
  policy::Algorithm1Options baseline_options = options;
  baseline_options.share_workspace = false;
  watch.reset();
  const auto baseline = policy::Algorithm1(baseline_options).devise(scenario);
  const double t_baseline = watch.elapsed_seconds();

  // Cold: one shared workspace, first devise() populates it.
  const auto workspace = std::make_shared<core::LatticeWorkspace>();
  policy::Algorithm1Options shared_options = options;
  shared_options.workspace = workspace;
  const policy::Algorithm1 shared_search(shared_options);
  watch.reset();
  const auto cold = shared_search.devise(scenario);
  const double t_cold = watch.elapsed_seconds();
  const core::WorkspaceStats cold_stats = workspace->stats();

  // Warm: second devise() against the now-populated workspace.
  watch.reset();
  const auto warm = shared_search.devise(scenario);
  const double t_warm = watch.elapsed_seconds();
  const core::WorkspaceStats warm_stats = workspace->stats();

  if (!same_policy(baseline.policy, cold.policy) ||
      !same_policy(cold.policy, warm.policy)) {
    std::cerr << "FAIL: devised policies diverge across configurations\n"
              << "  baseline: " << policy_to_string(baseline.policy) << "\n"
              << "  cold:     " << policy_to_string(cold.policy) << "\n"
              << "  warm:     " << policy_to_string(warm.policy) << "\n";
    return EXIT_FAILURE;
  }

  const double speedup_cold = t_baseline / t_cold;
  const double speedup_warm = t_baseline / t_warm;

  std::cout << "=== policy search | " << dist::model_family_name(family)
            << " | M = 200 on 5 servers | cells = " << options.conv.cells
            << " ===\n"
            << "policy: " << policy_to_string(cold.policy) << " ("
            << cold.iterations << " iterations"
            << (cold.converged ? ", converged" : "") << ")\n\n";
  Table table({"configuration", "devise (s)", "speedup vs baseline",
               "cache hits", "cache misses"});
  table.begin_row()
      .cell("baseline (workspace per solve)")
      .cell(t_baseline)
      .cell("1.000x")
      .cell("-")
      .cell("-");
  table.begin_row()
      .cell("cold shared workspace")
      .cell(t_cold)
      .cell(format_double(speedup_cold, 3) + "x")
      .cell(static_cast<double>(cold_stats.hits()))
      .cell(static_cast<double>(cold_stats.misses()));
  table.begin_row()
      .cell("warm shared workspace")
      .cell(t_warm)
      .cell(format_double(speedup_warm, 3) + "x")
      .cell(static_cast<double>(warm_stats.hits() - cold_stats.hits()))
      .cell(static_cast<double>(warm_stats.misses() - cold_stats.misses()));
  table.print(std::cout);
  std::cout << "\nworkspace after warm pass: " << warm_stats.laws
            << " cached laws, " << warm_stats.bytes << " bytes\n";

  const std::string out_path = cli.get_string("out");
  {
    std::ofstream out(out_path);
    out.precision(6);
    out << "{\n"
        << "  \"bench\": \"policy_search\",\n"
        << "  \"model\": \"" << dist::model_family_name(family) << "\",\n"
        << "  \"cells\": " << options.conv.cells << ",\n"
        << "  \"iterations\": " << cold.iterations << ",\n"
        << "  \"converged\": " << (cold.converged ? "true" : "false") << ",\n"
        << "  \"policy\": \"" << policy_to_string(cold.policy) << "\",\n"
        << "  \"baseline_seconds\": " << t_baseline << ",\n"
        << "  \"cold_seconds\": " << t_cold << ",\n"
        << "  \"warm_seconds\": " << t_warm << ",\n"
        << "  \"speedup_cold\": " << speedup_cold << ",\n"
        << "  \"speedup_warm\": " << speedup_warm << ",\n"
        << "  \"workspace\": {\n"
        << "    \"base_hits\": " << warm_stats.base_hits << ",\n"
        << "    \"base_misses\": " << warm_stats.base_misses << ",\n"
        << "    \"sum_hits\": " << warm_stats.sum_hits << ",\n"
        << "    \"sum_misses\": " << warm_stats.sum_misses << ",\n"
        << "    \"laws\": " << warm_stats.laws << ",\n"
        << "    \"bytes\": " << warm_stats.bytes << "\n"
        << "  }\n"
        << "}\n";
  }
  std::cout << "wrote " << out_path << "\n";

  if (warm_stats.hits() == 0) {
    std::cerr << "FAIL: shared workspace never served a hit\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
