// Fig. 4 reproduction: the testbed experiment of Section III-B.
//
// (a)/(b) Characterization: normalized histograms of the measured service
// and transfer times with the best-fit pdfs (MLE per family, selection by
// minimum histogram squared error). The paper found Pareto service times
// and shifted-Gamma transfer/FN times; histogram + fitted-pdf curves are
// written to fig4_histograms.csv.
//
// (c) Validation: service reliability vs L12 (with L21 = 0), m = (50, 25),
// failures exponential with means 300/150 s. Three series, as in the paper:
// theoretical prediction from the fitted laws, Monte-Carlo simulation
// (10 000 reps at the fitted laws), and "experiment" (500 reps on the
// ground-truth testbed). The paper's optimum is L12 = 26 with predicted
// reliability 0.6007, experiment within 7%; no reallocation loses ~15%,
// the Markovian-policy choice ~1.5%.
#include <iostream>

#include "agedtr/core/convolution.hpp"
#include "agedtr/policy/decision_policy.hpp"
#include "agedtr/policy/objective.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/stats/histogram.hpp"
#include "agedtr/testbed/testbed.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/stopwatch.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"

using namespace agedtr;

namespace {

void histogram_csv(Table& csv, const std::string& label,
                   const testbed::Characterization& c) {
  const stats::Histogram h(c.samples);
  const auto& best = *c.selection.best().distribution;
  for (std::size_t i = 0; i < h.bins(); ++i) {
    csv.begin_row()
        .cell(label)
        .cell(h.bin_center(i), 6)
        .cell(h.density(i), 6)
        .cell(best.pdf(h.bin_center(i)), 6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fig4: testbed characterization and validation (Fig. 4)");
  cli.add_option("samples", "4000", "measurements per random time");
  cli.add_option("mc-reps", "10000", "MC replications (paper: 10000)");
  cli.add_option("exp-reps", "500", "experiment replications (paper: 500)");
  cli.add_option("l12-step", "5", "L12 sweep step for Fig. 4(c)");
  cli.add_option("seed", "1987", "pipeline seed");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  Stopwatch watch;
  ThreadPool& pool = ThreadPool::global();

  // ---- (a)/(b): characterize the testbed. ----
  const testbed::CharacterizedTestbed ct = testbed::characterize_testbed(
      static_cast<std::size_t>(cli.get_int("samples")), seed);
  Table fits({"random time", "paper's family", "selected family",
              "fitted law", "mean (paper)", "mean (fitted)", "KS"});
  const auto fit_row = [&](const std::string& label,
                           const std::string& paper_family,
                           double paper_mean,
                           const testbed::Characterization& c) {
    const auto& best = c.selection.best();
    fits.begin_row()
        .cell(label)
        .cell(paper_family)
        .cell(best.family)
        .cell(best.distribution->describe())
        .cell(paper_mean)
        .cell(best.distribution->mean())
        .cell(best.ks, 3);
  };
  fit_row("service, server 1", "pareto", 4.858, ct.service1);
  fit_row("service, server 2", "pareto", 2.357, ct.service2);
  fit_row("task transfer 1->2", "shifted_gamma", 1.207, ct.transfer12);
  fit_row("task transfer 2->1", "shifted_gamma", 0.803, ct.transfer21);
  fit_row("FN transfer 1->2", "shifted_gamma", 0.313, ct.fn12);
  fit_row("FN transfer 2->1", "shifted_gamma", 0.145, ct.fn21);
  std::cout << "=== Fig. 4(a,b) | testbed characterization ===\n";
  fits.print(std::cout);
  Table hist_csv({"quantity", "bin_center", "histogram_density",
                  "fitted_pdf"});
  histogram_csv(hist_csv, "service1", ct.service1);
  histogram_csv(hist_csv, "service2", ct.service2);
  histogram_csv(hist_csv, "transfer12", ct.transfer12);
  histogram_csv(hist_csv, "transfer21", ct.transfer21);
  hist_csv.write_csv_file("fig4_histograms.csv");

  // ---- devise the optimal policy from the fitted laws (the optimum has
  //      L21 = 0, as in the paper: server 2 is the faster machine). The
  //      exhaustive 2-server search runs as a DecisionPolicy on the fresh
  //      t = 0 state of the fitted scenario. ----
  const auto rel_eval = policy::make_age_dependent_evaluator(
      ct.fitted, policy::Objective::kReliability);
  policy::DecisionEngineOptions engine_opts;
  engine_opts.objective = policy::Objective::kReliability;
  engine_opts.pool = &pool;
  const auto devise = [&](bool markovian) {
    const policy::TwoServerSearchPolicy search(
        {.markovian = markovian, .max_l21 = 0});
    const core::DtrPolicy devised = policy::decide_from_state(
        search, ct.fitted,
        core::SystemState::initial(ct.fitted, core::DtrPolicy(2)),
        engine_opts);
    return policy::PolicyPoint{static_cast<int>(devised(0, 1)),
                               static_cast<int>(devised(1, 0)),
                               rel_eval(devised)};
  };
  const auto best = devise(/*markovian=*/false);
  std::cout << "\nOptimal policy from fitted laws: L12 = " << best.l12
            << ", L21 = " << best.l21 << " (paper: 26, 0); predicted "
            << "reliability " << format_double(best.value)
            << " (paper: 0.6007)\n";

  // Markovian policy for the degradation comparison (same search, devised
  // under the exponentialized model; its value column is the *true*-law
  // reliability of that choice).
  const auto best_markov = devise(/*markovian=*/true);

  // ---- (c): reliability vs L12 with L21 = 0. ----
  const core::DcsScenario truth = testbed::make_testbed_scenario();
  sim::MonteCarloOptions mc;
  mc.replications = static_cast<std::size_t>(cli.get_int("mc-reps"));
  mc.seed = seed + 7;
  mc.pool = &pool;
  const auto exp_reps = static_cast<std::size_t>(cli.get_int("exp-reps"));

  Table series({"L12", "theory (fitted laws)", "MC simulation",
                "experiment", "experiment 95% CI"});
  Table csv({"l12", "theory", "mc", "experiment", "exp_lo", "exp_hi"});
  const int step = static_cast<int>(cli.get_int("l12-step"));
  for (int l12 = 0; l12 <= 50; l12 += step) {
    const auto p = policy::make_two_server_policy(l12, 0);
    const double theory = rel_eval(p);
    const auto simulated = sim::run_monte_carlo(ct.fitted, p, mc);
    const auto experiment =
        testbed::run_experiment(truth, p, exp_reps, seed + 100 +
                                                        static_cast<unsigned>(l12));
    series.begin_row()
        .cell(l12)
        .cell(theory)
        .cell(simulated.reliability.center)
        .cell(experiment.center)
        .cell("[" + format_double(experiment.lower, 3) + ", " +
              format_double(experiment.upper, 3) + "]");
    csv.begin_row()
        .cell(l12)
        .cell(theory, 6)
        .cell(simulated.reliability.center, 6)
        .cell(experiment.center, 6)
        .cell(experiment.lower, 6)
        .cell(experiment.upper, 6);
  }
  std::cout << "\n=== Fig. 4(c) | service reliability vs L12 (L21 = 0) ===\n";
  series.print(std::cout);
  csv.write_csv_file("fig4_reliability.csv");

  // Closing comparisons, as in the paper's discussion.
  const double r_opt = rel_eval(policy::make_two_server_policy(best.l12, 0));
  const double r_none = rel_eval(policy::make_two_server_policy(0, 0));
  const double r_markov = rel_eval(
      policy::make_two_server_policy(best_markov.l12, best_markov.l21));
  Table closing({"comparison", "reliability", "loss vs optimal",
                 "paper reports"});
  closing.begin_row()
      .cell("optimal (fitted, age-dependent)")
      .cell(r_opt)
      .cell("-")
      .cell("0.6007");
  closing.begin_row()
      .cell("no reallocation")
      .cell(r_none)
      .cell(format_double(100.0 * (r_opt - r_none) / r_opt, 3) + "%")
      .cell("~15% lower");
  closing.begin_row()
      .cell("Markovian-model policy (L12 = " +
            std::to_string(best_markov.l12) + ")")
      .cell(r_markov)
      .cell(format_double(100.0 * (r_opt - r_markov) / r_opt, 3) + "%")
      .cell("~1.5% lower");
  std::cout << '\n';
  closing.print(std::cout);
  std::cout << "\nCSV written to fig4_histograms.csv / fig4_reliability.csv"
            << " (" << format_double(watch.elapsed_seconds(), 3) << " s)\n";
  return 0;
}
