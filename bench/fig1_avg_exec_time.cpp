// Fig. 1 reproduction: average workload execution time T̄ as a function of
// the DTR policy (L12 sweep with L21 = 25 — half of server 2's initial
// load), under low and severe network delay, for all five distribution
// models. For each non-exponential model the Markovian prediction (same
// means, exponential laws) is printed alongside so the approximation error
// the paper reports (≤3% low, up to ~15% severe) is visible per point.
//
// Output: one table per (delay, model) pair plus a summary of the maximum
// relative Markovian error; series are also written to fig1_<delay>.csv.
#include <cmath>
#include <iostream>
#include <map>

#include "agedtr/policy/objective.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/stopwatch.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"
#include "paper_setup.hpp"

using namespace agedtr;
using bench::Delay;
using dist::ModelFamily;

int main(int argc, char** argv) {
  CliParser cli("fig1: average execution time vs DTR policy (Fig. 1)");
  cli.add_option("step", "5", "L12 sweep step");
  cli.add_option("l21", "25", "tasks reallocated from server 2 to 1");
  cli.add_option("cells", "32768", "lattice cells for the solver");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));
  const int step = static_cast<int>(cli.get_int("step"));
  const int l21 = static_cast<int>(cli.get_int("l21"));

  Stopwatch watch;
  ThreadPool& pool = ThreadPool::global();
  core::ConvolutionOptions conv;
  conv.cells = static_cast<std::size_t>(cli.get_int("cells"));

  Table summary({"delay", "model", "min T-bar (s)", "argmin L12",
                 "max Markovian rel. error"});

  for (Delay delay : {Delay::kLow, Delay::kSevere}) {
    Table csv({"model", "l12", "t_age_dependent", "t_markovian"});
    for (ModelFamily family : dist::all_model_families()) {
      const core::DcsScenario scenario =
          bench::two_server_scenario(family, delay, /*failures=*/false);
      const auto exact = policy::make_age_dependent_evaluator(
          scenario, policy::Objective::kMeanExecutionTime, 0.0, conv);
      const auto markovian = policy::make_age_dependent_evaluator(
          policy::exponentialized(scenario),
          policy::Objective::kMeanExecutionTime, 0.0, conv);

      std::vector<policy::PolicyPoint> grid;
      for (int l12 = 0; l12 <= 100; l12 += step) grid.push_back({l12, l21, 0});
      std::vector<double> exact_vals(grid.size()), markov_vals(grid.size());
      pool.parallel_for(0, grid.size(), [&](std::size_t i) {
        const auto p =
            policy::make_two_server_policy(grid[i].l12, grid[i].l21);
        exact_vals[i] = exact(p);
        markov_vals[i] = markovian(p);
      });

      Table table({"L12", "T-bar age-dependent (s)", "T-bar Markovian (s)",
                   "rel. error"});
      double max_err = 0.0;
      double best = exact_vals[0];
      int best_l12 = grid[0].l12;
      for (std::size_t i = 0; i < grid.size(); ++i) {
        const double err =
            std::fabs(markov_vals[i] - exact_vals[i]) / exact_vals[i];
        max_err = std::max(max_err, err);
        if (exact_vals[i] < best) {
          best = exact_vals[i];
          best_l12 = grid[i].l12;
        }
        table.begin_row()
            .cell(grid[i].l12)
            .cell(exact_vals[i])
            .cell(markov_vals[i])
            .cell(err, 3);
        csv.begin_row()
            .cell(dist::model_family_name(family))
            .cell(grid[i].l12)
            .cell(exact_vals[i], 8)
            .cell(markov_vals[i], 8);
      }
      std::cout << "\n=== Fig. 1 | " << bench::delay_name(delay)
                << " network delay | " << dist::model_family_name(family)
                << " model | L21 = " << l21 << " ===\n";
      table.print(std::cout);
      summary.begin_row()
          .cell(bench::delay_name(delay))
          .cell(dist::model_family_name(family))
          .cell(best)
          .cell(best_l12)
          .cell(max_err, 3);
    }
    csv.write_csv_file("fig1_" + bench::delay_name(delay) + ".csv");
  }

  std::cout << "\n=== Fig. 1 summary (paper: Markovian error <= 3% low, up "
               "to ~15% severe) ===\n";
  summary.print(std::cout);
  std::cout << "\nCSV series written to fig1_low.csv / fig1_severe.csv ("
            << format_double(watch.elapsed_seconds(), 3) << " s)\n";
  return 0;
}
