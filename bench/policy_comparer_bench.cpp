// Policy-comparison bench: ranks the stack's decision-policy families —
// Eq. (5) fair share, one-shot Algorithm 1, the Markovian-prescribed
// baseline, and rolling-horizon Algorithm 1 — against the pinned demo grid
// under common random numbers (policy::PolicyComparer).
//
// Every (policy, scenario) cell replays identical trajectory sub-streams,
// so differences between rows are policy effects, not sampling noise, and
// the whole table is bit-identical across thread counts. The CSV under
// bench_results/ is the same artifact the golden regression test pins;
// --golden compares this run's numbers against a pinned CSV at rtol 1e-9
// and exits nonzero on drift. --checkpoint journals each completed cell so
// a killed run resumes (--resume) instead of recomputing.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "agedtr/dist/builders.hpp"
#include "agedtr/policy/policy_comparer.hpp"
#include "agedtr/util/checkpoint.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/metrics.hpp"
#include "agedtr/util/stopwatch.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"

using namespace agedtr;

namespace {

std::string pack_double(double value) {
  std::ostringstream os;
  os << std::setprecision(17) << value;
  return os.str();
}

std::string pack_assessment(const policy::PolicyAssessment& a) {
  return join_fields(
      {std::to_string(a.trajectories), std::to_string(a.completed),
       std::to_string(a.truncated), pack_double(a.mean_completion_time.center),
       pack_double(a.mean_completion_time.lower),
       pack_double(a.mean_completion_time.upper),
       pack_double(a.reliability.center), pack_double(a.reliability.lower),
       pack_double(a.reliability.upper), pack_double(a.qos.center),
       pack_double(a.qos.lower), pack_double(a.qos.upper),
       std::to_string(a.epochs_fired), std::to_string(a.tasks_reallocated)});
}

policy::PolicyAssessment unpack_assessment(const std::string& policy_name,
                                           const std::string& scenario_name,
                                           const std::string& payload) {
  const std::vector<std::string> f = split_fields(payload);
  AGEDTR_REQUIRE(f.size() == 14,
                 "policy_comparer_bench: malformed journal payload");
  policy::PolicyAssessment a;
  a.policy_name = policy_name;
  a.scenario_name = scenario_name;
  a.trajectories = std::stoull(f[0]);
  a.completed = std::stoull(f[1]);
  a.truncated = std::stoull(f[2]);
  a.mean_completion_time = {std::stod(f[3]), std::stod(f[4]), std::stod(f[5])};
  a.reliability = {std::stod(f[6]), std::stod(f[7]), std::stod(f[8])};
  a.qos = {std::stod(f[9]), std::stod(f[10]), std::stod(f[11])};
  a.epochs_fired = std::stoull(f[12]);
  a.tasks_reallocated = std::stoll(f[13]);
  return a;
}

/// Loads a CSV produced by PolicyComparer::write_csv as raw cells.
std::vector<std::vector<std::string>> load_csv(const std::string& path) {
  std::ifstream is(path);
  AGEDTR_REQUIRE(is.good(), "policy_comparer_bench: cannot read " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    rows.push_back(split(line, ','));
  }
  return rows;
}

std::string join_row(const std::vector<std::string>& row) {
  std::string out;
  for (std::size_t c = 0; c < row.size(); ++c) {
    if (c > 0) out += ",";
    out += row[c];
  }
  return out;
}

/// The (policy, scenario) identity of one rankings row — the first two
/// columns of PolicyComparer::write_csv — so a drift report names the grid
/// cell instead of a bare row index.
std::string cell_id(const std::vector<std::string>& row) {
  if (row.size() < 2) return "<short row>";
  return row[0] + "/" + row[1];
}

/// Numeric-aware comparison at rtol: cells that parse as doubles must agree
/// to 1e-9 relative (1e-12 absolute near zero); everything else exactly.
/// On drift, *why carries the first diverging row in full — grid cell id,
/// the column's header name, and the complete expected and actual rows —
/// so a --smoke failure in CI is diagnosable from the log alone.
bool csv_drifted(const std::vector<std::vector<std::string>>& expected,
                 const std::vector<std::vector<std::string>>& actual,
                 std::string* why) {
  if (expected.size() != actual.size()) {
    *why = "row count " + std::to_string(actual.size()) + " vs pinned " +
           std::to_string(expected.size());
    return true;
  }
  const std::vector<std::string>* header =
      expected.empty() ? nullptr : &expected[0];
  for (std::size_t r = 0; r < expected.size(); ++r) {
    if (expected[r].size() != actual[r].size()) {
      *why = "cell " + cell_id(actual[r]) + " (row " + std::to_string(r) +
             "): column count " + std::to_string(actual[r].size()) +
             " vs pinned " + std::to_string(expected[r].size()) +
             "\n  expected: " + join_row(expected[r]) +
             "\n  actual:   " + join_row(actual[r]);
      return true;
    }
    for (std::size_t c = 0; c < expected[r].size(); ++c) {
      const std::string& e = expected[r][c];
      const std::string& a = actual[r][c];
      if (e == a) continue;
      char* e_end = nullptr;
      char* a_end = nullptr;
      const double ev = std::strtod(e.c_str(), &e_end);
      const double av = std::strtod(a.c_str(), &a_end);
      const bool both_numeric = e_end != e.c_str() && *e_end == '\0' &&
                                a_end != a.c_str() && *a_end == '\0';
      if (both_numeric) {
        const double tol = 1e-9 * std::max(std::abs(ev), std::abs(av)) + 1e-12;
        if (std::abs(ev - av) <= tol) continue;
      }
      const std::string column = header != nullptr && c < header->size()
                                     ? (*header)[c]
                                     : "col " + std::to_string(c);
      *why = "cell " + cell_id(actual[r]) + " (row " + std::to_string(r) +
             "), column '" + column + "': '" + a + "' vs pinned '" + e +
             "'\n  expected: " + join_row(expected[r]) +
             "\n  actual:   " + join_row(actual[r]);
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "rank decision-policy families (fair share, Algorithm 1, "
      "Markovian-prescribed, rolling-horizon) on the pinned comparison grid "
      "under common random numbers");
  cli.add_option("trajectories", "400",
                 "Monte-Carlo trajectories per (policy, scenario) cell");
  cli.add_option("seed", "0", "CRN seed (0 keeps the grid's pinned seed)");
  cli.add_option("deadline", "0",
                 "QoS deadline (0 keeps the grid's pinned deadline)");
  cli.add_option("model", "",
                 "override every server's service-law family (exponential, "
                 "pareto1, pareto2, shifted_exponential, uniform); empty "
                 "keeps the grid's heterogeneous laws");
  cli.add_option("out", "bench_results/comparer_rankings.csv",
                 "where to write the rankings CSV");
  cli.add_option("json", "", "also write the assessments as JSON here");
  cli.add_option("golden", "",
                 "compare this run's CSV against the pinned CSV at this path "
                 "(rtol 1e-9) and exit nonzero on drift");
  cli.add_option("checkpoint", "",
                 "journal each completed cell to this path (crash-consistent "
                 "resume with --resume)");
  cli.add_flag("resume",
               "replay matching cells from an existing --checkpoint journal "
               "instead of recomputing them");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  cli.add_flag("smoke",
               "CI-sized run: the pinned demo grid exactly as the golden "
               "test runs it (48 trajectories)");
  if (!cli.parse(argc, argv)) return 0;
  const metrics::ScopedExport metrics_export(cli.get_string("metrics"));
  const bool smoke = cli.get_flag("smoke");

  policy::ComparerDemoGrid grid = policy::make_comparer_demo_grid();
  if (!smoke) {
    grid.options.trajectories =
        static_cast<std::size_t>(cli.get_int("trajectories"));
    if (cli.get_int("seed") != 0) {
      grid.options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    }
    if (cli.get_double("deadline") > 0.0) {
      grid.options.deadline = cli.get_double("deadline");
    }
    const std::string model = cli.get_string("model");
    if (!model.empty()) {
      const dist::ModelFamily family = dist::parse_model_family(model);
      for (policy::ComparerScenario& scenario : grid.scenarios) {
        for (core::ServerSpec& server : scenario.scenario.servers) {
          server.service =
              dist::make_model_distribution(family, server.service->mean());
        }
      }
    }
  }
  grid.options.pool = &ThreadPool::global();

  Stopwatch watch;
  std::vector<policy::PolicyAssessment> assessments;
  const std::string checkpoint_path = cli.get_string("checkpoint");
  if (checkpoint_path.empty()) {
    assessments =
        policy::PolicyComparer(grid.scenarios, grid.policies, grid.options)
            .compare();
  } else {
    // Per-cell journaling: each (scenario, policy) cell is one resumable
    // unit keyed by its names; the tag fingerprints everything that changes
    // the numbers so a stale journal is discarded, never replayed.
    std::ostringstream tag;
    tag << "policy-comparer-v1|traj=" << grid.options.trajectories
        << "|seed=" << grid.options.seed
        << "|deadline=" << pack_double(grid.options.deadline)
        << "|model=" << cli.get_string("model") << "|smoke=" << smoke;
    Checkpoint journal(checkpoint_path, tag.str(), cli.get_flag("resume"));
    for (const policy::ComparerScenario& scenario : grid.scenarios) {
      for (const policy::ComparerEntry& entry : grid.policies) {
        const std::string key = scenario.name + "|" + entry.name;
        const std::string payload = journal.run_unit(key, [&] {
          const policy::PolicyComparer cell({scenario}, {entry}, grid.options);
          return pack_assessment(cell.compare().front());
        });
        assessments.push_back(
            unpack_assessment(entry.name, scenario.name, payload));
      }
    }
    policy::PolicyComparer::assign_ranks(assessments);
    std::cout << "checkpoint: " << journal.stats().hits << " of "
              << assessments.size() << " cells replayed from "
              << checkpoint_path << "\n";
  }

  Table table = policy::PolicyComparer::to_table(assessments);
  table.print(std::cout);
  for (const policy::PolicyAssessment& a : assessments) {
    if (a.rank == 1) {
      std::cout << "scenario " << a.scenario_name << ": best policy "
                << a.policy_name << " (mean T "
                << format_double(a.mean_completion_time.center, 4) << ")\n";
    }
  }

  const std::string out_path = cli.get_string("out");
  const std::filesystem::path out_dir =
      std::filesystem::path(out_path).parent_path();
  if (!out_dir.empty()) std::filesystem::create_directories(out_dir);
  policy::PolicyComparer::write_csv(assessments, out_path);
  std::cout << "rankings written to " << out_path << " ("
            << format_double(watch.elapsed_seconds(), 1) << " s total)\n";
  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    const std::filesystem::path json_dir =
        std::filesystem::path(json_path).parent_path();
    if (!json_dir.empty()) std::filesystem::create_directories(json_dir);
    policy::PolicyComparer::write_json(assessments, json_path);
    std::cout << "JSON written to " << json_path << "\n";
  }

  const std::string golden_path = cli.get_string("golden");
  if (!golden_path.empty()) {
    std::string why;
    if (csv_drifted(load_csv(golden_path), load_csv(out_path), &why)) {
      std::cout << "ERROR: rankings drifted from the pinned grid (" << why
                << "); regenerate " << golden_path
                << " via the golden test's AGEDTR_REGEN_GOLDEN flow if the "
                   "change is intended\n";
      return 1;
    }
    std::cout << "rankings match the pinned grid (" << golden_path
              << ", rtol 1e-9)\n";
  }
  return 0;
}
