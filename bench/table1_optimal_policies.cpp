// Table I reproduction: optimal DTR policies for the average execution time
// (problem (3)) and the QoS in executing the workload by a deadline
// (problem (4)), per distribution model and delay condition, with
// completely reliable servers. For every non-exponential model the table
// also shows the policy the *Markovian approximation* would prescribe and
// the true metric value under that policy — the 10–40% degradation the
// paper attributes to using the wrong model under severe delays.
//
// Deadlines: the paper's Fig. 3 discussion uses T_M = 180 s under severe
// delay; under low delay we use T_M = 150 s (≈1.4× the optimal mean).
// Both are CLI-overridable.
#include <cmath>
#include <iostream>

#include "agedtr/policy/objective.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/stopwatch.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"
#include "paper_setup.hpp"

using namespace agedtr;
using bench::Delay;
using dist::ModelFamily;

namespace {

// Coarse-to-fine exhaustive search over (L12, L21) in [0,100]x[0,50].
policy::PolicyPoint coarse_to_fine(const policy::PolicyEvaluator& eval,
                                   bool maximize, ThreadPool& pool,
                                   int coarse_step) {
  std::vector<policy::PolicyPoint> grid;
  for (int l12 = 0; l12 <= 100; l12 += coarse_step) {
    for (int l21 = 0; l21 <= 50; l21 += coarse_step) {
      grid.push_back({l12, l21, 0.0});
    }
  }
  const auto evaluate = [&](std::vector<policy::PolicyPoint>& points) {
    pool.parallel_for(0, points.size(), [&](std::size_t i) {
      points[i].value = eval(
          policy::make_two_server_policy(points[i].l12, points[i].l21));
    });
  };
  const auto pick = [&](const std::vector<policy::PolicyPoint>& points) {
    const policy::PolicyPoint* best = &points.front();
    for (const auto& p : points) {
      if (maximize ? p.value > best->value : p.value < best->value) best = &p;
    }
    return *best;
  };
  evaluate(grid);
  policy::PolicyPoint best = pick(grid);
  // Refine the ±coarse_step neighbourhood at unit resolution.
  std::vector<policy::PolicyPoint> fine;
  for (int l12 = std::max(0, best.l12 - coarse_step);
       l12 <= std::min(100, best.l12 + coarse_step); ++l12) {
    for (int l21 = std::max(0, best.l21 - coarse_step);
         l21 <= std::min(50, best.l21 + coarse_step); ++l21) {
      fine.push_back({l12, l21, 0.0});
    }
  }
  evaluate(fine);
  return pick(fine);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("table1: optimal DTR policies per model (Table I)");
  cli.add_option("coarse-step", "5", "coarse search grid step");
  cli.add_option("cells", "32768", "lattice cells for the solver");
  cli.add_option("deadline-low", "150", "QoS deadline, low delay (s)");
  cli.add_option("deadline-severe", "180", "QoS deadline, severe delay (s)");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));
  const int coarse = static_cast<int>(cli.get_int("coarse-step"));

  Stopwatch watch;
  ThreadPool& pool = ThreadPool::global();
  core::ConvolutionOptions conv;
  conv.cells = static_cast<std::size_t>(cli.get_int("cells"));

  for (Delay delay : {Delay::kLow, Delay::kSevere}) {
    const double deadline = delay == Delay::kLow
                                ? cli.get_double("deadline-low")
                                : cli.get_double("deadline-severe");
    Table mean_table({"model", "L12*", "L21*", "min T-bar (s)",
                      "Markovian L12/L21", "T-bar under Markovian policy",
                      "degradation"});
    Table qos_table({"model", "L12*", "L21*", "max QoS",
                     "Markovian L12/L21", "QoS under Markovian policy",
                     "degradation"});
    for (ModelFamily family : dist::all_model_families()) {
      const core::DcsScenario scenario =
          bench::two_server_scenario(family, delay, /*failures=*/false);
      const core::DcsScenario markov_scenario =
          policy::exponentialized(scenario);

      // --- problem (3): minimize the average execution time.
      const auto mean_true = policy::make_age_dependent_evaluator(
          scenario, policy::Objective::kMeanExecutionTime, 0.0, conv);
      const auto mean_markov = policy::make_age_dependent_evaluator(
          markov_scenario, policy::Objective::kMeanExecutionTime, 0.0, conv);
      const auto best_true = coarse_to_fine(mean_true, false, pool, coarse);
      const auto best_markov =
          coarse_to_fine(mean_markov, false, pool, coarse);
      const double degraded_mean = mean_true(
          policy::make_two_server_policy(best_markov.l12, best_markov.l21));
      mean_table.begin_row()
          .cell(dist::model_family_name(family))
          .cell(best_true.l12)
          .cell(best_true.l21)
          .cell(best_true.value)
          .cell(std::to_string(best_markov.l12) + "/" +
                std::to_string(best_markov.l21))
          .cell(degraded_mean)
          .cell(format_double(
                    100.0 * (degraded_mean - best_true.value) /
                        best_true.value,
                    3) +
                "%");

      // --- problem (4): maximize the QoS by the deadline.
      const auto qos_true = policy::make_age_dependent_evaluator(
          scenario, policy::Objective::kQos, deadline, conv);
      const auto qos_markov = policy::make_age_dependent_evaluator(
          markov_scenario, policy::Objective::kQos, deadline, conv);
      const auto best_qos = coarse_to_fine(qos_true, true, pool, coarse);
      const auto best_qos_markov =
          coarse_to_fine(qos_markov, true, pool, coarse);
      const double degraded_qos = qos_true(policy::make_two_server_policy(
          best_qos_markov.l12, best_qos_markov.l21));
      qos_table.begin_row()
          .cell(dist::model_family_name(family))
          .cell(best_qos.l12)
          .cell(best_qos.l21)
          .cell(best_qos.value)
          .cell(std::to_string(best_qos_markov.l12) + "/" +
                std::to_string(best_qos_markov.l21))
          .cell(degraded_qos)
          .cell(format_double(best_qos.value > 1e-12
                                  ? 100.0 * (best_qos.value - degraded_qos) /
                                        best_qos.value
                                  : 0.0,
                              3) +
                "%");
    }
    std::cout << "\n=== Table I | " << bench::delay_name(delay)
              << " delay | average execution time (problem (3)) ===\n";
    mean_table.print(std::cout);
    mean_table.write_csv_file("table1_mean_" + bench::delay_name(delay) +
                              ".csv");
    std::cout << "\n=== Table I | " << bench::delay_name(delay)
              << " delay | QoS within " << format_double(deadline, 4)
              << " s (problem (4)) ===\n";
    qos_table.print(std::cout);
    qos_table.write_csv_file("table1_qos_" + bench::delay_name(delay) +
                             ".csv");
  }
  std::cout << "\n(paper: under low delay the Markovian policies are nearly "
               "optimal; under severe delay they degrade the metrics by "
               "roughly 10-40%)\nElapsed: "
            << format_double(watch.elapsed_seconds(), 3) << " s\n";
  return 0;
}
