// Replication tradeoff bench: mean completion time and QoS versus the
// uniform replication factor r, under increasing slowdown (straggler)
// intensity — the replication-helps-then-hurts curve.
//
// The grid runs through sim::run_replication_study (the same code path the
// property tests and the golden CSV use): each (r, intensity) cell is a
// Monte-Carlo estimate under make_uniform_replication with
// cancel-on-first-completion, bracketed by the analytic min-of-r bounds
// from core::replication_completion_bounds. The headline qualitative
// checks:
//   * at intensity 0 the mean is non-decreasing in r (replication without
//     stragglers only adds transfer and contention cost), and
//   * at the highest intensity some r > 1 beats r = 1 while the largest r
//     is worse than the best (helps, then hurts).
//
// Output: a per-cell table, the bracket violations (there must be none),
// and a CSV series under bench_results/. --smoke shrinks the workload and
// the replication count for CI.
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/sim/replication_study.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/metrics.hpp"
#include "agedtr/util/stopwatch.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "paper_setup.hpp"

using namespace agedtr;
using dist::ModelFamily;

int main(int argc, char** argv) {
  CliParser cli(
      "replication tradeoff: mean completion time and QoS vs the uniform "
      "replication factor under increasing slowdown intensity");
  cli.add_option("model", "exponential", "service/transfer model family");
  cli.add_option("delay", "low", "network delay regime (low|severe)");
  cli.add_option("servers", "5",
                 "paper scenario size (5 = Table II system, 2 = Fig. 1 "
                 "system; l12/l21 apply only to the two-server system)");
  cli.add_option("l12", "25", "tasks reallocated server 1 -> 2");
  cli.add_option("l21", "0", "tasks reallocated server 2 -> 1");
  cli.add_option("factors", "1,2,3,4", "comma-separated replication factors");
  cli.add_option("intensities", "0,0.5,1,2",
                 "comma-separated slowdown intensities (0 = seed model)");
  cli.add_option("slowdown-rate", "0.02",
                 "intensity-1 slowdown onset rate per server (per second)");
  cli.add_option("slowdown-mean", "40",
                 "mean slowdown window length (seconds, exponential)");
  cli.add_option("slowdown-factor", "0.1",
                 "service-rate multiplier inside a slowdown window");
  cli.add_option("replications", "3000", "Monte-Carlo replications per cell");
  cli.add_option("seed", "20100913", "Monte-Carlo seed");
  cli.add_option("deadline", "300", "QoS deadline (seconds; 0 disables)");
  cli.add_option("out", "bench_results/replication_tradeoff.csv",
                 "where to write the CSV series");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  cli.add_flag("smoke",
               "CI-sized run: a scaled-down workload and few replications "
               "(overrides the workload options; the tradeoff checks relax "
               "to bracket validity only)");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));
  const bool smoke = cli.get_flag("smoke");

  const ModelFamily family = dist::parse_model_family(cli.get_string("model"));
  const bench::Delay delay = cli.get_string("delay") == "severe"
                                 ? bench::Delay::kSevere
                                 : bench::Delay::kLow;

  // The bounds (and the mean itself) are defined for reliable servers; the
  // slowdown process is the failure mode under study here. The five-server
  // system gives the mean-vs-r curve room to turn (helps, then hurts); the
  // two-server system is the CI-sized variant.
  const bool smoke_grid = smoke;
  const bool five = !smoke_grid && cli.get_int("servers") == 5;
  core::DcsScenario scenario =
      five ? bench::five_server_scenario(family, /*failures=*/false)
           : bench::two_server_scenario(family, delay, /*failures=*/false);
  int l12 = static_cast<int>(cli.get_int("l12"));
  int l21 = static_cast<int>(cli.get_int("l21"));

  sim::ReplicationStudyOptions study;
  study.base_slowdown.rate = cli.get_double("slowdown-rate");
  study.base_slowdown.duration =
      dist::Exponential::with_mean(cli.get_double("slowdown-mean"));
  study.base_slowdown.factor = cli.get_double("slowdown-factor");
  study.replications = static_cast<std::size_t>(cli.get_int("replications"));
  study.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  study.deadline = cli.get_double("deadline");
  study.pool = &ThreadPool::global();
  study.factors.clear();
  for (const std::string& tok : split(cli.get_string("factors"), ',')) {
    study.factors.push_back(std::stoi(tok));
  }
  study.slowdown_intensities.clear();
  for (const std::string& tok : split(cli.get_string("intensities"), ',')) {
    study.slowdown_intensities.push_back(std::stod(tok));
  }

  if (smoke) {
    // The CI-sized grid: a 12+6-task workload, both factors, the fault-free
    // and one slowed column, a few hundred replications.
    scenario.servers[0].initial_tasks = 12;
    scenario.servers[1].initial_tasks = 6;
    l12 = 3;
    l21 = 0;
    study.factors = {1, 2};
    study.slowdown_intensities = {0.0, 2.0};
    study.replications = 300;
    study.deadline = 60.0;
  }
  const core::DtrPolicy policy =
      five ? core::DtrPolicy(scenario.servers.size())
           : policy::make_two_server_policy(l12, l21);

  Stopwatch watch;
  const std::vector<sim::ReplicationStudyRow> rows =
      sim::run_replication_study(scenario, policy, study);

  Table table({"factor", "intensity", "mc mean", "bound lower", "bound upper",
               "mc qos", "qos lower", "qos upper", "cancelled", "slowdowns"});
  Table csv({"factor", "intensity", "mc_mean", "mc_qos", "bound_lower",
             "bound_upper", "qos_lower", "qos_upper", "replicas_cancelled",
             "slowdowns", "truncated"});
  std::size_t bracket_violations = 0;
  for (const sim::ReplicationStudyRow& row : rows) {
    // The analytic bracket must contain the Monte-Carlo estimate up to MC
    // noise: 2% model tolerance plus ~3 standard errors of the estimator
    // (1.5× the reported CI half-width). The tolerance is generous because
    // the bench's job is the qualitative curve; the golden test pins the
    // exact numbers.
    const double slack =
        0.02 * std::max(row.mc_mean, 1.0) + 1.5 * row.mc_mean_halfwidth;
    if (row.mc_mean < row.bound_lower - slack ||
        row.mc_mean > row.bound_upper + slack) {
      ++bracket_violations;
    }
    table.begin_row()
        .cell(row.factor)
        .cell(row.intensity, 2)
        .cell(row.mc_mean, 2)
        .cell(row.bound_lower, 2)
        .cell(row.bound_upper, 2)
        .cell(row.mc_qos, 4)
        .cell(row.qos_lower, 4)
        .cell(row.qos_upper, 4)
        .cell(static_cast<long long>(row.replicas_cancelled))
        .cell(static_cast<long long>(row.slowdowns));
    csv.begin_row()
        .cell(row.factor)
        .cell(row.intensity, 4)
        .cell(row.mc_mean, 6)
        .cell(row.mc_qos, 6)
        .cell(row.bound_lower, 6)
        .cell(row.bound_upper, 6)
        .cell(row.qos_lower, 6)
        .cell(row.qos_upper, 6)
        .cell(static_cast<long long>(row.replicas_cancelled))
        .cell(static_cast<long long>(row.slowdowns))
        .cell(static_cast<long long>(row.truncated));
  }
  if (five) {
    std::cout << "Replication tradeoff (five-server system, identity "
                 "policy, slowdown factor "
              << format_double(study.base_slowdown.factor, 2) << "):\n";
  } else {
    std::cout << "Replication tradeoff (policy L12 = " << l12
              << ", L21 = " << l21 << ", slowdown factor "
              << format_double(study.base_slowdown.factor, 2) << "):\n";
  }
  table.print(std::cout);

  // --- Qualitative shape of the mean-vs-r curve per intensity column. ----
  std::map<double, std::map<int, double>> mean_by_intensity;
  for (const sim::ReplicationStudyRow& row : rows) {
    mean_by_intensity[row.intensity][row.factor] = row.mc_mean;
  }
  for (const auto& [intensity, by_factor] : mean_by_intensity) {
    if (by_factor.size() < 2) continue;
    const double at_one = by_factor.count(1) ? by_factor.at(1)
                                             : by_factor.begin()->second;
    double best = std::numeric_limits<double>::infinity();
    int best_factor = by_factor.begin()->first;
    for (const auto& [factor, mean] : by_factor) {
      if (mean < best) {
        best = mean;
        best_factor = factor;
      }
    }
    const double at_max = by_factor.rbegin()->second;
    std::cout << "intensity " << format_double(intensity, 2)
              << ": best factor r = " << best_factor << " (mean "
              << format_double(best, 2) << " vs "
              << format_double(at_one, 2) << " at r = 1";
    if (best_factor > 1 && at_max > best) {
      std::cout << "; helps then hurts: r = " << by_factor.rbegin()->first
                << " gives " << format_double(at_max, 2) << ")";
    } else {
      std::cout << ")";
    }
    std::cout << "\n";
  }

  if (bracket_violations > 0) {
    std::cout << "ERROR: " << bracket_violations
              << " cells fall outside the analytic bracket\n";
  } else {
    std::cout << "All " << rows.size()
              << " cells lie inside their analytic [lower, upper] bracket.\n";
  }

  const std::string out_path = cli.get_string("out");
  const std::filesystem::path out_dir =
      std::filesystem::path(out_path).parent_path();
  if (!out_dir.empty()) std::filesystem::create_directories(out_dir);
  csv.write_csv_file(out_path);
  std::cout << "CSV series written to " << out_path << " ("
            << format_double(watch.elapsed_seconds(), 1) << " s total)\n";
  return bracket_violations > 0 ? 1 : 0;
}
