// The parallel Monte-Carlo runner: agreement with analytic values,
// thread-count invariance, and CI semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/markovian.hpp"
#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::sim {
namespace {

using core::DcsScenario;
using core::DtrPolicy;
using core::ServerSpec;

DcsScenario exp_scenario(int m1, int m2, bool failures) {
  std::vector<ServerSpec> servers = {
      {m1, dist::Exponential::with_mean(2.0),
       failures ? dist::Exponential::with_mean(100.0) : nullptr},
      {m2, dist::Exponential::with_mean(1.0),
       failures ? dist::Exponential::with_mean(80.0) : nullptr}};
  return core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(2.0),
      dist::Exponential::with_mean(0.2));
}

TEST(MonteCarlo, MeanMatchesMarkovianSolver) {
  const DcsScenario s = exp_scenario(10, 5, false);
  DtrPolicy policy(2);
  policy.set(0, 1, 3);
  const core::MarkovianSolver solver(s);
  const double exact = solver.mean_execution_time(policy);
  MonteCarloOptions opts;
  opts.replications = 30'000;
  opts.seed = 7;
  const MonteCarloMetrics m = run_monte_carlo(s, policy, opts);
  ASSERT_TRUE(m.all_completed);
  EXPECT_NEAR(m.mean_completion_time.center, exact,
              3.5 * m.mean_completion_time.half_width());
}

TEST(MonteCarlo, ReliabilityMatchesMarkovianSolver) {
  const DcsScenario s = exp_scenario(10, 5, true);
  DtrPolicy policy(2);
  policy.set(0, 1, 3);
  const core::MarkovianSolver solver(s);
  const double exact = solver.reliability(policy);
  MonteCarloOptions opts;
  opts.replications = 30'000;
  opts.seed = 8;
  const MonteCarloMetrics m = run_monte_carlo(s, policy, opts);
  EXPECT_FALSE(m.all_completed);
  EXPECT_NEAR(m.reliability.center, exact,
              std::max(4.0 * m.reliability.half_width(), 0.01));
}

TEST(MonteCarlo, DeterministicRegardlessOfPool) {
  const DcsScenario s = exp_scenario(8, 4, true);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  MonteCarloOptions serial;
  serial.replications = 2'000;
  serial.seed = 11;
  ThreadPool one(1);
  serial.pool = &one;
  MonteCarloOptions parallel = serial;
  ThreadPool many(8);
  parallel.pool = &many;
  const MonteCarloMetrics a = run_monte_carlo(s, policy, serial);
  const MonteCarloMetrics b = run_monte_carlo(s, policy, parallel);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.mean_completion_time.center,
                   b.mean_completion_time.center);
}

TEST(MonteCarlo, QosCountsDeadline) {
  const DcsScenario s = exp_scenario(6, 3, false);
  const DtrPolicy policy(2);
  const core::ConvolutionSolver conv;
  const auto workloads = core::apply_policy(s, policy);
  const double mean = conv.mean_execution_time(workloads);
  MonteCarloOptions opts;
  opts.replications = 20'000;
  opts.seed = 12;
  opts.deadline = mean;
  const MonteCarloMetrics m = run_monte_carlo(s, policy, opts);
  EXPECT_NEAR(m.qos.center, conv.qos(workloads, mean),
              std::max(4.0 * m.qos.half_width(), 0.01));
}

TEST(MonteCarlo, QosNeverExceedsReliability) {
  const DcsScenario s = exp_scenario(10, 5, true);
  MonteCarloOptions opts;
  opts.replications = 5'000;
  opts.deadline = 20.0;
  const MonteCarloMetrics m = run_monte_carlo(s, DtrPolicy(2), opts);
  EXPECT_LE(m.qos.center, m.reliability.center + 1e-12);
}

TEST(MonteCarlo, BusyTimeDiagnostics) {
  const DcsScenario s = exp_scenario(10, 5, false);
  MonteCarloOptions opts;
  opts.replications = 2'000;
  const MonteCarloMetrics m = run_monte_carlo(s, DtrPolicy(2), opts);
  ASSERT_EQ(m.mean_busy_time.size(), 2u);
  // Busy time ≈ tasks × mean service.
  EXPECT_NEAR(m.mean_busy_time[0], 20.0, 1.0);
  EXPECT_NEAR(m.mean_busy_time[1], 5.0, 0.5);
}

TEST(MonteCarlo, RejectsTooFewReplications) {
  const DcsScenario s = exp_scenario(1, 1, false);
  MonteCarloOptions opts;
  opts.replications = 1;
  EXPECT_THROW(run_monte_carlo(s, DtrPolicy(2), opts), InvalidArgument);
}

TEST(MonteCarlo, SeedChangesResults) {
  const DcsScenario s = exp_scenario(5, 2, false);
  MonteCarloOptions a;
  a.replications = 500;
  a.seed = 1;
  MonteCarloOptions b = a;
  b.seed = 2;
  const MonteCarloMetrics ma = run_monte_carlo(s, DtrPolicy(2), a);
  const MonteCarloMetrics mb = run_monte_carlo(s, DtrPolicy(2), b);
  EXPECT_NE(ma.mean_completion_time.center, mb.mean_completion_time.center);
}

}  // namespace
}  // namespace agedtr::sim
