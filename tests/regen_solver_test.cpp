// The literal Theorem-1 solver (age-dependent regenerative recursion)
// validated against the Markovian DP (exponential case), the exact
// convolution solver (non-Markovian case), and closed forms — the central
// consistency web of the reproduction.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/ctmc.hpp"
#include "agedtr/core/markovian.hpp"
#include "agedtr/core/regen_solver.hpp"
#include "agedtr/dist/aged.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/gamma.hpp"
#include "agedtr/dist/pareto.hpp"
#include "agedtr/dist/uniform.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::core {
namespace {

DcsScenario small_scenario(const dist::DistPtr& w1, const dist::DistPtr& w2,
                           int m1, int m2, const dist::DistPtr& z,
                           const dist::DistPtr& y1 = nullptr,
                           const dist::DistPtr& y2 = nullptr) {
  std::vector<ServerSpec> servers = {{m1, w1, y1}, {m2, w2, y2}};
  return make_uniform_network_scenario(std::move(servers), z,
                                       dist::Exponential::with_mean(0.2));
}

ConvolutionOptions fine_grid() {
  ConvolutionOptions opts;
  opts.cells = 1u << 15;
  return opts;
}

TEST(RegenSolver, SingleTaskMeanIsServiceMean) {
  // One server, one task: T̄ = E[W].
  DcsScenario s;
  s.servers = {{1, std::make_shared<dist::Gamma>(2.0, 1.5), nullptr}};
  s.transfer = {{nullptr}};
  const RegenerativeSolver solver(s);
  EXPECT_NEAR(solver.mean_execution_time(DtrPolicy(1)), 3.0, 1e-6);
}

TEST(RegenSolver, TwoTasksMeanIsTwiceServiceMean) {
  DcsScenario s;
  s.servers = {{2, std::make_shared<dist::Uniform>(0.5, 2.5), nullptr}};
  s.transfer = {{nullptr}};
  const RegenerativeSolver solver(s);
  EXPECT_NEAR(solver.mean_execution_time(DtrPolicy(1)), 3.0, 1e-5);
}

TEST(RegenSolver, ExponentialCaseMatchesMarkovianMean) {
  const DcsScenario s =
      small_scenario(dist::Exponential::with_mean(2.0),
                     dist::Exponential::with_mean(1.0), 2, 1,
                     dist::Exponential::with_mean(1.5));
  DtrPolicy policy(2);
  policy.set(0, 1, 1);
  const MarkovianSolver markovian(s);
  const RegenerativeSolver regen(s);
  EXPECT_NEAR(regen.mean_execution_time(policy),
              markovian.mean_execution_time(policy), 2e-3);
}

TEST(RegenSolver, ExponentialCaseMatchesMarkovianReliability) {
  const DcsScenario s = small_scenario(
      dist::Exponential::with_mean(2.0), dist::Exponential::with_mean(1.0), 1,
      1, dist::Exponential::with_mean(1.5),
      dist::Exponential::with_mean(20.0), dist::Exponential::with_mean(15.0));
  DtrPolicy policy(2);
  policy.set(0, 1, 1);
  const MarkovianSolver markovian(s);
  RegenSolverOptions opts;
  opts.quad_nodes = 8;
  const RegenerativeSolver regen(s, opts);
  EXPECT_NEAR(regen.reliability(policy), markovian.reliability(policy), 5e-3);
}

TEST(RegenSolver, ExponentialCaseMatchesCtmcQos) {
  const DcsScenario s =
      small_scenario(dist::Exponential::with_mean(2.0),
                     dist::Exponential::with_mean(1.0), 2, 1,
                     dist::Exponential::with_mean(1.5));
  DtrPolicy policy(2);
  policy.set(0, 1, 1);
  const CtmcTransientSolver ctmc(s, policy);
  const RegenerativeSolver regen(s);
  for (double deadline : {3.0, 8.0, 20.0}) {
    EXPECT_NEAR(regen.qos(policy, deadline), ctmc.qos(deadline), 3e-3)
        << "deadline=" << deadline;
  }
}

TEST(RegenSolver, UniformCaseMatchesConvolutionMean) {
  // Non-Markovian: bounded-support service and transfer laws.
  const DcsScenario s = small_scenario(
      std::make_shared<dist::Uniform>(0.0, 4.0),
      std::make_shared<dist::Uniform>(0.0, 2.0), 2, 1,
      std::make_shared<dist::Uniform>(0.0, 3.0));
  DtrPolicy policy(2);
  policy.set(0, 1, 1);
  const RegenerativeSolver regen(s);
  const ConvolutionSolver conv(fine_grid());
  EXPECT_NEAR(regen.mean_execution_time(policy),
              conv.mean_execution_time(apply_policy(s, policy)), 0.02);
}

TEST(RegenSolver, ParetoCaseMatchesConvolutionMean) {
  const DcsScenario s = small_scenario(
      dist::Pareto::with_mean(2.0, 2.5), dist::Pareto::with_mean(1.0, 2.5), 2,
      1, dist::Pareto::with_mean(1.5, 2.5));
  DtrPolicy policy(2);
  policy.set(0, 1, 1);
  const RegenerativeSolver regen(s);
  const ConvolutionSolver conv(fine_grid());
  const double reference = conv.mean_execution_time(apply_policy(s, policy));
  EXPECT_NEAR(regen.mean_execution_time(policy), reference, 0.02 * reference);
}

TEST(RegenSolver, ShiftedExponentialQosMatchesConvolution) {
  const DcsScenario s = small_scenario(
      dist::ShiftedExponential::with_mean(2.0),
      dist::ShiftedExponential::with_mean(1.0), 2, 1,
      dist::ShiftedExponential::with_mean(1.5));
  DtrPolicy policy(2);
  policy.set(0, 1, 1);
  const RegenerativeSolver regen(s);
  const ConvolutionSolver conv(fine_grid());
  const auto workloads = apply_policy(s, policy);
  for (double deadline : {4.0, 7.0, 12.0}) {
    EXPECT_NEAR(regen.qos(policy, deadline), conv.qos(workloads, deadline),
                0.01)
        << "deadline=" << deadline;
  }
}

TEST(RegenSolver, NonMarkovianReliabilityMatchesConvolution) {
  const DcsScenario s = small_scenario(
      std::make_shared<dist::Uniform>(0.0, 4.0),
      std::make_shared<dist::Uniform>(0.0, 2.0), 1, 1,
      std::make_shared<dist::Uniform>(1.0, 2.0),
      dist::Exponential::with_mean(15.0), dist::Exponential::with_mean(10.0));
  DtrPolicy policy(2);
  policy.set(0, 1, 1);
  RegenSolverOptions opts;
  opts.quad_nodes = 8;
  const RegenerativeSolver regen(s, opts);
  const ConvolutionSolver conv(fine_grid());
  EXPECT_NEAR(regen.reliability(policy),
              conv.reliability(apply_policy(s, policy)), 8e-3);
}

TEST(RegenSolver, FnMachineryDoesNotChangeMetrics) {
  // FN packets are regeneration events but do not affect the Section III
  // metrics; removing the FN laws must leave reliability unchanged.
  DcsScenario with_fn = small_scenario(
      dist::Exponential::with_mean(2.0),
      std::make_shared<dist::Uniform>(0.0, 2.0), 1, 1,
      std::make_shared<dist::Uniform>(0.5, 1.5),
      dist::Exponential::with_mean(10.0), dist::Exponential::with_mean(8.0));
  DcsScenario without_fn = with_fn;
  without_fn.fn_transfer.clear();
  DtrPolicy policy(2);
  policy.set(0, 1, 1);
  RegenSolverOptions opts;
  opts.quad_nodes = 8;
  const RegenerativeSolver a(with_fn, opts);
  const RegenerativeSolver b(without_fn, opts);
  EXPECT_NEAR(a.reliability(policy), b.reliability(policy), 4e-3);
}

TEST(RegenSolver, AgedExponentialStateEqualsFreshState) {
  // Memorylessness: exponential clocks with positive ages behave as fresh.
  const DcsScenario s =
      small_scenario(dist::Exponential::with_mean(2.0),
                     dist::Exponential::with_mean(1.0), 2, 1,
                     dist::Exponential::with_mean(1.5));
  const RegenerativeSolver regen(s);
  SystemState fresh = SystemState::initial(s, DtrPolicy(2));
  SystemState old_state = fresh;
  old_state.service_age = {5.0, 3.0};
  EXPECT_NEAR(regen.mean_execution_time(fresh),
              regen.mean_execution_time(old_state), 2e-3);
}

TEST(RegenSolver, AgedUniformStateMatchesAgedLawMean) {
  // One server, one task, service age a: T̄ = E[W_a].
  DcsScenario s;
  const auto u = std::make_shared<dist::Uniform>(0.0, 4.0);
  s.servers = {{1, u, nullptr}};
  s.transfer = {{nullptr}};
  const RegenerativeSolver regen(s);
  SystemState state = SystemState::initial(s, DtrPolicy(1));
  state.service_age[0] = 3.0;
  EXPECT_NEAR(regen.mean_execution_time(state),
              dist::aged(u, 3.0)->mean(), 1e-6);
}

TEST(RegenSolver, AgingServiceShortensLightTailedCompletion) {
  // With an increasing-hazard law, a task already in progress finishes
  // sooner in expectation — the memory the Markovian model cannot see.
  DcsScenario s;
  const auto g = std::make_shared<dist::Gamma>(4.0, 0.5);
  s.servers = {{1, g, nullptr}};
  s.transfer = {{nullptr}};
  const RegenerativeSolver regen(s);
  SystemState fresh = SystemState::initial(s, DtrPolicy(1));
  SystemState aged_state = fresh;
  aged_state.service_age[0] = 1.5;
  EXPECT_LT(regen.mean_execution_time(aged_state),
            regen.mean_execution_time(fresh));
}

TEST(RegenSolver, QosConvergesToReliability) {
  const DcsScenario s = small_scenario(
      std::make_shared<dist::Uniform>(0.0, 2.0),
      std::make_shared<dist::Uniform>(0.0, 1.0), 1, 1,
      std::make_shared<dist::Uniform>(0.5, 1.5),
      dist::Exponential::with_mean(10.0), dist::Exponential::with_mean(8.0));
  const RegenerativeSolver regen(s);
  DtrPolicy policy(2);
  EXPECT_NEAR(regen.qos(policy, 500.0), regen.reliability(policy), 5e-3);
  EXPECT_LE(regen.qos(policy, 2.0), regen.qos(policy, 4.0) + 1e-12);
}

TEST(RegenSolver, DepthGuardTriggersOnLargeConfigurations) {
  // Exceeding the recursion depth is a budget condition a fallback chain
  // recovers from, not a precondition violation.
  const DcsScenario s =
      small_scenario(dist::Exponential::with_mean(2.0),
                     dist::Exponential::with_mean(1.0), 100, 50,
                     dist::Exponential::with_mean(1.5));
  RegenSolverOptions opts;
  opts.max_depth = 8;
  const RegenerativeSolver regen(s, opts);
  EXPECT_THROW(static_cast<void>(regen.mean_execution_time(DtrPolicy(2))), BudgetExceeded);
}

TEST(RegenSolver, BudgetDepthOverridesMaxDepth) {
  const DcsScenario s =
      small_scenario(dist::Exponential::with_mean(2.0),
                     dist::Exponential::with_mean(1.0), 100, 50,
                     dist::Exponential::with_mean(1.5));
  RegenSolverOptions opts;
  opts.budget.max_depth = 8;  // tighter than the default max_depth
  const RegenerativeSolver regen(s, opts);
  EXPECT_THROW(static_cast<void>(regen.reliability(DtrPolicy(2))), BudgetExceeded);
}

TEST(RegenSolver, WallClockBudgetExhaustsOnSlowConfigurations) {
  // 6 + 5 tasks is within the depth guard but far too slow for a
  // microsecond of wall clock.
  const DcsScenario s =
      small_scenario(dist::Exponential::with_mean(2.0),
                     dist::Exponential::with_mean(1.0), 6, 5,
                     dist::Exponential::with_mean(1.5));
  RegenSolverOptions opts;
  opts.budget.max_seconds = 1e-6;
  const RegenerativeSolver regen(s, opts);
  EXPECT_THROW(static_cast<void>(regen.mean_execution_time(DtrPolicy(2))), BudgetExceeded);
}

TEST(RegenSolver, ThreeServerMeanMatchesConvolution) {
  // Remark 1: the Theorem-1 characterization extends to n servers; the
  // implementation is n-server generic. Validate a 3-server instance.
  std::vector<ServerSpec> servers = {
      {1, std::make_shared<dist::Uniform>(0.0, 4.0), nullptr},
      {1, std::make_shared<dist::Uniform>(0.0, 2.0), nullptr},
      {1, dist::Exponential::with_mean(1.5), nullptr}};
  const DcsScenario s = make_uniform_network_scenario(
      std::move(servers), std::make_shared<dist::Uniform>(0.5, 1.5),
      dist::Exponential::with_mean(0.2));
  DtrPolicy policy(3);
  policy.set(0, 2, 1);
  RegenSolverOptions opts;
  opts.quad_nodes = 8;
  const RegenerativeSolver regen(s, opts);
  const ConvolutionSolver conv(fine_grid());
  const double reference = conv.mean_execution_time(apply_policy(s, policy));
  EXPECT_NEAR(regen.mean_execution_time(policy), reference,
              0.02 * reference);
}

TEST(RegenSolver, MeanRequiresReliableServers) {
  const DcsScenario s = small_scenario(
      dist::Exponential::with_mean(2.0), dist::Exponential::with_mean(1.0), 1,
      1, dist::Exponential::with_mean(1.5),
      dist::Exponential::with_mean(10.0), dist::Exponential::with_mean(8.0));
  const RegenerativeSolver regen(s);
  EXPECT_THROW(static_cast<void>(regen.mean_execution_time(DtrPolicy(2))), InvalidArgument);
}

}  // namespace
}  // namespace agedtr::core
