// The DecisionPolicy adapters and the CRN PolicyComparer.
//
// The adapters must be *transparent*: a decision made through the uniform
// interface is bit-identical to the legacy entry point it wraps (fair share
// == initial_policy, Algorithm1Policy == Algorithm1::devise, two-server
// search == TwoServerPolicySearch::optimize). The comparer must be a fair
// experiment: trajectory sub-streams are counter-derived, so every cell is
// bit-identical across thread pools, and ranks follow the documented rule.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/decision_policy.hpp"
#include "agedtr/policy/policy_comparer.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr::policy {
namespace {

using core::DcsScenario;
using core::DtrPolicy;
using core::ServerSpec;
using core::SystemState;
using dist::ModelFamily;

DcsScenario mini_scenario(bool failures) {
  std::vector<ServerSpec> servers = {
      {8, dist::make_model_distribution(ModelFamily::kPareto1, 2.0),
       failures ? dist::make_model_distribution(ModelFamily::kUniform, 40.0)
                : nullptr},
      {3, dist::make_model_distribution(ModelFamily::kUniform, 1.0),
       failures ? dist::Exponential::with_mean(60.0) : nullptr}};
  return core::make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(ModelFamily::kPareto1, 1.0),
      dist::Exponential::with_mean(0.1));
}

void expect_same_policy(const DtrPolicy& a, const DtrPolicy& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << "L(" << i << "," << j << ")";
    }
  }
}

core::ConvolutionOptions coarse_conv() {
  core::ConvolutionOptions conv;
  conv.cells = 2048;
  return conv;
}

TEST(DecisionPolicyAdapters, FairShareMatchesInitialPolicy) {
  const DcsScenario s = mini_scenario(false);
  const DtrPolicy through_adapter = decide_from_state(
      FairSharePolicy(), s, SystemState::initial(s, DtrPolicy(2)));
  const DtrPolicy legacy =
      initial_policy(s, perfect_estimates(s), ReallocationCriterion::kSpeed);
  expect_same_policy(through_adapter, legacy);
}

TEST(DecisionPolicyAdapters, Algorithm1MatchesLegacyDevise) {
  const DcsScenario s = mini_scenario(false);
  Algorithm1Options opts;
  opts.max_iterations = 2;
  opts.conv = coarse_conv();
  DecisionEngineOptions engine_opts;
  engine_opts.conv = coarse_conv();
  const DtrPolicy through_adapter = decide_from_state(
      Algorithm1Policy(opts), s, SystemState::initial(s, DtrPolicy(2)),
      engine_opts);
  const DtrPolicy legacy = Algorithm1(opts).devise(s).policy;
  expect_same_policy(through_adapter, legacy);
}

TEST(DecisionPolicyAdapters, TwoServerSearchMatchesLegacyOptimize) {
  const DcsScenario s = mini_scenario(false);
  DecisionEngineOptions engine_opts;
  engine_opts.conv = coarse_conv();
  const DtrPolicy through_adapter = decide_from_state(
      TwoServerSearchPolicy(), s, SystemState::initial(s, DtrPolicy(2)),
      engine_opts);

  EvaluationEngine engine(
      s,
      {Objective::kMeanExecutionTime, 0.0, /*markovian=*/false, coarse_conv(),
       nullptr});
  const PolicyPoint best = TwoServerPolicySearch(8, 3).optimize(
      engine, /*maximize=*/false);
  expect_same_policy(through_adapter,
                     make_two_server_policy(best.l12, best.l21));
}

TEST(DecisionPolicyAdapters, MaxL21CapRestrictsTheSearchLine) {
  const DcsScenario s = mini_scenario(false);
  DecisionEngineOptions engine_opts;
  engine_opts.conv = coarse_conv();
  const DtrPolicy line = decide_from_state(
      TwoServerSearchPolicy({.markovian = false, .max_l21 = 0}), s,
      SystemState::initial(s, DtrPolicy(2)), engine_opts);
  EXPECT_EQ(line(1, 0), 0);

  EvaluationEngine engine(
      s,
      {Objective::kMeanExecutionTime, 0.0, /*markovian=*/false, coarse_conv(),
       nullptr});
  const PolicyPoint best =
      TwoServerPolicySearch(8, 0).optimize(engine, /*maximize=*/false);
  expect_same_policy(line, make_two_server_policy(best.l12, 0));
}

TEST(DecisionPolicyAdapters, DecideRejectsStaleStates) {
  const DcsScenario s = mini_scenario(false);
  EvaluationEngine engine(
      s,
      {Objective::kMeanExecutionTime, 0.0, /*markovian=*/false, coarse_conv(),
       nullptr});
  SystemState stale = SystemState::initial(s, DtrPolicy(2));
  stale.tasks[0] -= 1;  // queues no longer match the engine's scenario
  const FairSharePolicy fair;
  EXPECT_THROW((void)fair.decide(stale, engine), std::invalid_argument);

  SystemState down = SystemState::initial(s, DtrPolicy(2));
  down.up[1] = 0;  // failed servers must be compacted away first
  EXPECT_THROW((void)fair.decide(down, engine), std::invalid_argument);
}

TEST(DecisionPolicyAdapters, NamesAreStableIdentifiers) {
  EXPECT_EQ(FairSharePolicy().name(), "fair-share(speed)");
  EXPECT_EQ(Algorithm1Policy().name(), "algorithm1");
  EXPECT_EQ(make_markovian_prescribed_policy()->name(),
            "algorithm1(markovian)");
  EXPECT_EQ(TwoServerSearchPolicy().name(), "two-server-search");
  EXPECT_EQ(TwoServerSearchPolicy({.markovian = true, .max_l21 = 0}).name(),
            "two-server-search(markovian)[l21<=0]");
  const auto rolling = RollingHorizonPolicy(
      std::make_shared<FairSharePolicy>(), {1.0, 2.0});
  EXPECT_EQ(rolling.name(), "rolling(fair-share(speed))");
  EXPECT_EQ(rolling.decision_epochs(), (std::vector<double>{1.0, 2.0}));
}

TEST(RollingHorizonPolicy, ValidatesItsEpochList) {
  const auto inner = std::make_shared<FairSharePolicy>();
  EXPECT_THROW(RollingHorizonPolicy(nullptr, {1.0}), std::invalid_argument);
  EXPECT_THROW(RollingHorizonPolicy(inner, {2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(RollingHorizonPolicy(inner, {-1.0}), std::invalid_argument);
  EXPECT_NO_THROW(RollingHorizonPolicy(inner, {}));
}

// --- The CRN comparer. ----------------------------------------------------

PolicyComparerOptions mini_options(ThreadPool* pool) {
  PolicyComparerOptions options;
  options.trajectories = 12;
  options.seed = 0xfeed;
  options.deadline = 25.0;
  options.engine.conv = coarse_conv();
  options.pool = pool;
  return options;
}

std::vector<ComparerEntry> mini_policies() {
  const auto fair = std::make_shared<FairSharePolicy>();
  return {{"fair-share", fair},
          {"rolling-fair-share",
           std::make_shared<RollingHorizonPolicy>(
               fair, std::vector<double>{2.0, 6.0})}};
}

TEST(PolicyComparerTest, BitIdenticalAcrossThreadPools) {
  const std::vector<ComparerScenario> scenarios = {
      {"mini", mini_scenario(true)}};
  const std::vector<PolicyAssessment> serial =
      PolicyComparer(scenarios, mini_policies(), mini_options(nullptr))
          .compare();
  const std::vector<PolicyAssessment> pooled =
      PolicyComparer(scenarios, mini_policies(),
                     mini_options(&ThreadPool::global()))
          .compare();
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].policy_name);
    EXPECT_EQ(serial[i].policy_name, pooled[i].policy_name);
    EXPECT_EQ(serial[i].completed, pooled[i].completed);
    EXPECT_EQ(serial[i].truncated, pooled[i].truncated);
    // Bitwise equality, not tolerance: CRN sub-streams are counter-derived
    // per trajectory and aggregation order is fixed.
    EXPECT_EQ(serial[i].mean_completion_time.center,
              pooled[i].mean_completion_time.center);
    EXPECT_EQ(serial[i].mean_completion_time.lower,
              pooled[i].mean_completion_time.lower);
    EXPECT_EQ(serial[i].mean_completion_time.upper,
              pooled[i].mean_completion_time.upper);
    EXPECT_EQ(serial[i].reliability.center, pooled[i].reliability.center);
    EXPECT_EQ(serial[i].qos.center, pooled[i].qos.center);
    EXPECT_EQ(serial[i].epochs_fired, pooled[i].epochs_fired);
    EXPECT_EQ(serial[i].tasks_reallocated, pooled[i].tasks_reallocated);
    EXPECT_EQ(serial[i].rank, pooled[i].rank);
  }
}

TEST(PolicyComparerTest, RollingPoliciesActuallyReDecide) {
  const std::vector<ComparerScenario> scenarios = {
      {"mini", mini_scenario(true)}};
  const std::vector<PolicyAssessment> assessments =
      PolicyComparer(scenarios, mini_policies(), mini_options(nullptr))
          .compare();
  ASSERT_EQ(assessments.size(), 2u);
  EXPECT_EQ(assessments[0].epochs_fired, 0u);  // one-shot fair share
  EXPECT_GT(assessments[1].epochs_fired, 0u);  // rolling wrapper
}

TEST(PolicyComparerTest, AssignRanksFollowsTheDocumentedRule) {
  const auto cell = [](const char* policy, const char* scenario,
                       std::size_t completed, double mean) {
    PolicyAssessment a;
    a.policy_name = policy;
    a.scenario_name = scenario;
    a.trajectories = 4;
    a.completed = completed;
    a.mean_completion_time = {mean, mean, mean};
    return a;
  };
  std::vector<PolicyAssessment> grid = {
      cell("b", "s1", 4, 10.0), cell("a", "s1", 4, 10.0),
      cell("c", "s1", 0, 0.0),  cell("d", "s1", 4, 5.0),
      cell("a", "s2", 4, 3.0),  cell("b", "s2", 4, 2.0)};
  PolicyComparer::assign_ranks(grid);
  EXPECT_EQ(grid[0].rank, 3);  // ties break by policy name: a before b
  EXPECT_EQ(grid[1].rank, 2);
  EXPECT_EQ(grid[2].rank, 4);  // never completed sorts last
  EXPECT_EQ(grid[3].rank, 1);
  EXPECT_EQ(grid[4].rank, 2);  // ranks restart per scenario
  EXPECT_EQ(grid[5].rank, 1);
}

TEST(PolicyComparerTest, DemoGridIsWellFormed) {
  const ComparerDemoGrid grid = make_comparer_demo_grid();
  EXPECT_EQ(grid.scenarios.size(), 2u);
  EXPECT_EQ(grid.policies.size(), 4u);  // >= 4 policy families, per contract
  for (const ComparerEntry& entry : grid.policies) {
    EXPECT_NE(entry.policy, nullptr) << entry.name;
  }
  EXPECT_GT(grid.options.trajectories, 0u);
  EXPECT_GT(grid.options.deadline, 0.0);
}

}  // namespace
}  // namespace agedtr::policy
