// policy::EvaluationEngine: the scenario-scoped evaluation layer — batched
// vs scalar bit-identity, workspace sharing and its counters, uniform
// budget handling, the adapter's lifetime guarantee, the deterministic
// clamp, and the engine-backed Algorithm 1 reproducing the pre-engine
// (per-pair-solver) policies on the Table II scenarios.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "agedtr/core/lattice_workspace.hpp"
#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/algorithm1.hpp"
#include "agedtr/policy/evaluation_engine.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::policy {
namespace {

using core::DcsScenario;
using core::DtrPolicy;
using core::ServerSpec;
using dist::ModelFamily;

DcsScenario scenario_2(ModelFamily family, int m1, int m2, double w1,
                       double w2, double z) {
  std::vector<ServerSpec> servers = {
      {m1, dist::make_model_distribution(family, w1), nullptr},
      {m2, dist::make_model_distribution(family, w2), nullptr}};
  return core::make_uniform_network_scenario(
      std::move(servers), dist::make_model_distribution(family, z),
      dist::Exponential::with_mean(0.2));
}

/// The Table II five-server severe-delay system (M = 200, per-task
/// transfers of mean 24), at reduced lattice scale for test runtimes.
DcsScenario five_server(ModelFamily family, bool failures) {
  const std::vector<double> service_means = {5.0, 4.0, 3.0, 2.0, 1.0};
  const std::vector<double> failure_means = {1000.0, 800.0, 600.0, 500.0,
                                             400.0};
  std::vector<ServerSpec> servers;
  for (std::size_t j = 0; j < 5; ++j) {
    servers.push_back(
        {40, dist::make_model_distribution(family, service_means[j]),
         failures ? dist::Exponential::with_mean(failure_means[j]) : nullptr});
  }
  DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), dist::make_model_distribution(family, 24.0),
      dist::Exponential::with_mean(1.0));
  s.transfer_scaling = core::TransferScaling::kPerTask;
  return s;
}

TEST(EvaluationEngine, BatchedMatchesScalarBitForBit) {
  const DcsScenario s = scenario_2(ModelFamily::kUniform, 6, 3, 2.0, 1.0, 1.0);
  EvaluationEngineOptions options;
  options.objective = Objective::kMeanExecutionTime;
  const EvaluationEngine engine(s, options);

  std::vector<DtrPolicy> policies;
  for (int l12 = 0; l12 <= 6; ++l12) {
    for (int l21 = 0; l21 <= 3; ++l21) {
      policies.push_back(make_two_server_policy(l12, l21));
    }
  }
  const std::vector<double> batched = engine.evaluate(policies);
  ASSERT_EQ(batched.size(), policies.size());
  for (std::size_t i = 0; i < policies.size(); ++i) {
    EXPECT_EQ(batched[i], engine.evaluate(policies[i])) << "policy " << i;
  }
}

TEST(EvaluationEngine, PooledBatchMatchesSerialBatch) {
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 5, 4, 2.0, 1.0, 1.5);
  std::vector<DtrPolicy> policies;
  for (int l12 = 0; l12 <= 5; ++l12) {
    policies.push_back(make_two_server_policy(l12, 1));
  }
  EvaluationEngineOptions serial_options;
  serial_options.objective = Objective::kMeanExecutionTime;
  const EvaluationEngine serial(s, serial_options);

  ThreadPool pool(4);
  EvaluationEngineOptions pooled_options = serial_options;
  pooled_options.pool = &pool;
  const EvaluationEngine pooled(s, pooled_options);

  const std::vector<double> a = serial.evaluate(policies);
  const std::vector<double> b = pooled.evaluate(policies);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(EvaluationEngine, TwoServerSearchEngineFormMatchesEvaluatorForm) {
  const DcsScenario s =
      scenario_2(ModelFamily::kShiftedExponential, 5, 3, 2.0, 1.0, 1.0);
  EvaluationEngineOptions options;
  options.objective = Objective::kMeanExecutionTime;
  const EvaluationEngine engine(s, options);
  // A second engine with its own private workspace, driven through the
  // PolicyEvaluator adapter: same model, so bit-identical values.
  const PolicyEvaluator eval =
      EvaluationEngine(s, options).as_policy_evaluator();

  const TwoServerPolicySearch search(5, 3);
  const auto via_engine = search.surface(engine);
  const auto via_eval = search.surface(eval);
  ASSERT_EQ(via_engine.size(), via_eval.size());
  for (std::size_t i = 0; i < via_engine.size(); ++i) {
    EXPECT_EQ(via_engine[i].l12, via_eval[i].l12);
    EXPECT_EQ(via_engine[i].l21, via_eval[i].l21);
    EXPECT_EQ(via_engine[i].value, via_eval[i].value);
  }
  const auto best_engine = search.optimize(engine, false);
  const auto best_eval = search.optimize(eval, false);
  EXPECT_EQ(best_engine.l12, best_eval.l12);
  EXPECT_EQ(best_engine.l21, best_eval.l21);
}

TEST(EvaluationEngine, SharedWorkspaceAccumulatesHitsAcrossEngines) {
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 6, 2, 2.0, 1.0, 1.5);
  const auto workspace = std::make_shared<core::LatticeWorkspace>();
  EvaluationEngineOptions options;
  options.objective = Objective::kMeanExecutionTime;

  const EvaluationEngine first(s, options, workspace);
  const DtrPolicy policy = make_two_server_policy(3, 0);
  const double a = first.evaluate(policy);
  const core::WorkspaceStats after_first = first.workspace_stats();
  EXPECT_GT(after_first.misses(), 0u);

  const EvaluationEngine second(s, options, workspace);
  const double b = second.evaluate(policy);
  EXPECT_EQ(a, b);
  EXPECT_EQ(second.workspace_stats().misses(), after_first.misses());
  EXPECT_GT(second.workspace_stats().hits(), after_first.hits());
}

TEST(EvaluationEngine, MarkovianPathIsStableAndMatchesFactory) {
  // Per-task groups flatten through the engine's memo: repeated
  // evaluations must agree exactly with each other and with the factory
  // adapter (which is the same engine underneath).
  DcsScenario s = scenario_2(ModelFamily::kPareto1, 8, 4, 2.0, 1.0, 1.5);
  s.transfer_scaling = core::TransferScaling::kPerTask;
  EvaluationEngineOptions options;
  options.objective = Objective::kMeanExecutionTime;
  options.markovian = true;
  const EvaluationEngine engine(s, options);
  EXPECT_TRUE(engine.scenario().servers[0].service->is_memoryless());

  const DtrPolicy policy = make_two_server_policy(3, 1);
  const double first = engine.evaluate(policy);
  EXPECT_EQ(first, engine.evaluate(policy));
  const PolicyEvaluator factory =
      make_markovian_evaluator(s, Objective::kMeanExecutionTime);
  EXPECT_NEAR(factory(policy), first, 1e-12);
}

TEST(EvaluationEngine, BudgetAppliesToBothModelPaths) {
  const DcsScenario s =
      scenario_2(ModelFamily::kPareto1, 10, 5, 2.0, 1.0, 1.5);
  EvaluationEngineOptions options;
  options.objective = Objective::kMeanExecutionTime;
  options.conv.budget.max_seconds = 1e-9;
  const DtrPolicy policy = make_two_server_policy(4, 0);

  const EvaluationEngine aged(s, options);
  EXPECT_THROW((void)aged.evaluate(policy), BudgetExceeded);

  // Satellite of the refactor: the Markovian factory now takes
  // ConvolutionOptions, so the same wall-clock cap reaches that path too.
  const PolicyEvaluator markov = make_markovian_evaluator(
      s, Objective::kMeanExecutionTime, 0.0, options.conv);
  EXPECT_THROW((void)markov(policy), BudgetExceeded);
}

TEST(EvaluationEngine, BudgetFailureMidBatchCarriesThePolicyIndex) {
  // Every element of this batch trips the (immediately exhausted) budget;
  // the batch still runs to completion and the error rethrown is the
  // first *by index*, wrapped with that index — deterministic regardless
  // of pool scheduling.
  const DcsScenario s =
      scenario_2(ModelFamily::kPareto1, 10, 5, 2.0, 1.0, 1.5);
  EvaluationEngineOptions options;
  options.objective = Objective::kMeanExecutionTime;
  options.conv.budget.max_seconds = 1e-9;
  const EvaluationEngine engine(s, options);

  const std::vector<DtrPolicy> policies = {make_two_server_policy(4, 0),
                                           make_two_server_policy(3, 1),
                                           make_two_server_policy(2, 2)};
  try {
    (void)engine.evaluate(policies);
    FAIL() << "expected BatchElementBudgetExceeded";
  } catch (const BatchElementBudgetExceeded& e) {
    EXPECT_EQ(e.policy_index, 0u);
    EXPECT_NE(std::string(e.what()).find("policy 0"), std::string::npos);
  }
  // The wrapper stays catchable as plain BudgetExceeded, so existing
  // degradation paths (the ResilientEvaluator chain) keep working.
  EXPECT_THROW((void)engine.evaluate(policies), BudgetExceeded);
}

TEST(EvaluationEngine, SupervisedQuarantineCarriesTheRequestLabel) {
  // The service layer batches requests from many clients into one
  // supervised call. When a single element overruns its budget, the
  // quarantine entry must name the *request* the element came from, not
  // just its (meaningless to the client) batch position.
  const DcsScenario s =
      scenario_2(ModelFamily::kPareto1, 10, 5, 2.0, 1.0, 1.5);
  EvaluationEngineOptions options;
  options.objective = Objective::kMeanExecutionTime;
  options.conv.budget.max_seconds = 1e-9;
  const EvaluationEngine engine(s, options);

  const std::vector<DtrPolicy> policies = {make_two_server_policy(4, 0),
                                           make_two_server_policy(3, 1)};
  const std::vector<std::string> labels = {"req-aa01", "req-bb02"};
  SupervisorOptions supervise;
  supervise.max_retries = 0;
  supervise.backoff_initial_seconds = 0.0;
  const SupervisedBatchResult result =
      engine.evaluate_supervised(policies, supervise, labels);
  ASSERT_EQ(result.supervision.quarantined.size(), policies.size());
  for (const QuarantineEntry& q : result.supervision.quarantined) {
    ASSERT_LT(q.index, labels.size());
    EXPECT_NE(q.error.find("[" + labels[q.index] + "]"), std::string::npos)
        << "quarantine error must carry the request label: " << q.error;
    EXPECT_NE(q.error.find("policy " + std::to_string(q.index)),
              std::string::npos)
        << q.error;
  }

  // The plain batch's rethrown error carries the label the same way.
  try {
    (void)engine.evaluate(policies, labels);
    FAIL() << "expected BatchElementBudgetExceeded";
  } catch (const BatchElementBudgetExceeded& e) {
    EXPECT_EQ(e.policy_label, labels[e.policy_index]);
    EXPECT_NE(std::string(e.what()).find("[" + labels[e.policy_index] + "]"),
              std::string::npos);
  }

  // Misaligned labels are a caller bug, rejected up front on both paths.
  const std::vector<std::string> short_labels = {"req-aa01"};
  EXPECT_THROW((void)engine.evaluate(policies, short_labels), InvalidArgument);
  EXPECT_THROW(
      (void)engine.evaluate_supervised(policies, supervise, short_labels),
      InvalidArgument);
}

TEST(EvaluationEngine, FailingElementDoesNotPoisonTheRestOfTheBatch) {
  // policies[2] overdraws server 0's queue (7 > 6): a deterministic
  // per-element InvalidArgument. Under supervision the batch completes,
  // the bad element is quarantined under its index without retry (the
  // failure is permanent), and every healthy element's value matches the
  // scalar path bit for bit.
  const DcsScenario s = scenario_2(ModelFamily::kUniform, 6, 3, 2.0, 1.0, 1.0);
  EvaluationEngineOptions options;
  options.objective = Objective::kMeanExecutionTime;
  const EvaluationEngine engine(s, options);

  const std::vector<DtrPolicy> policies = {
      make_two_server_policy(1, 0), make_two_server_policy(2, 1),
      make_two_server_policy(7, 0), make_two_server_policy(0, 3)};
  const SupervisedBatchResult result = engine.evaluate_supervised(policies);
  ASSERT_EQ(result.values.size(), policies.size());
  ASSERT_EQ(result.supervision.quarantined.size(), 1u);
  EXPECT_EQ(result.supervision.quarantined[0].index, 2u);
  EXPECT_EQ(result.supervision.quarantined[0].attempts, 1);
  EXPECT_EQ(result.supervision.succeeded, 3u);
  EXPECT_TRUE(std::isnan(result.values[2]));
  for (const std::size_t i : {0u, 1u, 3u}) {
    EXPECT_EQ(result.values[i], engine.evaluate(policies[i])) << "policy "
                                                              << i;
  }

  // The plain batch also completes every element before failing: the
  // rethrown error is the bad element's own InvalidArgument, verbatim.
  EXPECT_THROW((void)engine.evaluate(policies), InvalidArgument);
}

TEST(EvaluationEngine, AdapterOutlivesEngineHandle) {
  PolicyEvaluator eval;
  {
    const DcsScenario s =
        scenario_2(ModelFamily::kExponential, 4, 2, 2.0, 1.0, 1.0);
    EvaluationEngineOptions options;
    options.objective = Objective::kMeanExecutionTime;
    const EvaluationEngine engine(s, options);
    eval = engine.as_policy_evaluator();
  }  // engine handle destroyed; the closure keeps the shared state alive
  EXPECT_GT(eval(make_two_server_policy(1, 0)), 0.0);
}

TEST(EvaluationEngine, QosRequiresDeadline) {
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 4, 2, 2.0, 1.0, 1.0);
  EvaluationEngineOptions options;
  options.objective = Objective::kQos;
  EXPECT_THROW(EvaluationEngine(s, options), InvalidArgument);
}

TEST(ClampPledges, GrantsLargestPledgesFirst) {
  // Sender 0 pledges {5, 3, 5} against a queue of 10: the two 5s win and
  // the 3 is starved, regardless of recipient order.
  std::vector<std::vector<int>> pledges(4, std::vector<int>(4, 0));
  pledges[0][1] = 5;
  pledges[0][2] = 3;
  pledges[0][3] = 5;
  const DtrPolicy policy = clamp_pledges(pledges, {10, 0, 0, 0});
  EXPECT_EQ(policy(0, 1), 5);
  EXPECT_EQ(policy(0, 2), 0);
  EXPECT_EQ(policy(0, 3), 5);
}

TEST(ClampPledges, TiesBreakTowardSmallerRecipient) {
  std::vector<std::vector<int>> pledges(4, std::vector<int>(4, 0));
  pledges[0][1] = 4;
  pledges[0][2] = 4;
  pledges[0][3] = 4;
  const DtrPolicy policy = clamp_pledges(pledges, {10, 0, 0, 0});
  EXPECT_EQ(policy(0, 1), 4);
  EXPECT_EQ(policy(0, 2), 4);
  EXPECT_EQ(policy(0, 3), 2);
}

TEST(ClampPledges, NoTruncationWhenPledgesFit) {
  std::vector<std::vector<int>> pledges(3, std::vector<int>(3, 0));
  pledges[0][1] = 2;
  pledges[0][2] = 3;
  pledges[2][0] = 1;
  const DtrPolicy policy = clamp_pledges(pledges, {5, 0, 4});
  EXPECT_EQ(policy(0, 1), 2);
  EXPECT_EQ(policy(0, 2), 3);
  EXPECT_EQ(policy(2, 0), 1);
}

TEST(ClampPledges, RejectsShapeMismatch) {
  EXPECT_THROW(clamp_pledges({{0, 1}}, {5, 5}), InvalidArgument);
  EXPECT_THROW(clamp_pledges({{0}, {0}}, {5, 5}), InvalidArgument);
}

/// The policies Algorithm 1 devised before the engine refactor (captured
/// from the per-pair-solver implementation at these exact settings); the
/// engine-backed path must reproduce them entry for entry.
struct ExpectedPledge {
  std::size_t from;
  std::size_t to;
  int tasks;
};

void expect_policy(const DtrPolicy& policy,
                   const std::vector<ExpectedPledge>& expected) {
  DtrPolicy want(policy.size());
  for (const ExpectedPledge& p : expected) want.set(p.from, p.to, p.tasks);
  for (std::size_t i = 0; i < policy.size(); ++i) {
    for (std::size_t j = 0; j < policy.size(); ++j) {
      if (i == j) continue;
      EXPECT_EQ(policy(i, j), want(i, j)) << i << " -> " << j;
    }
  }
}

Algorithm1Options table2_options(Objective objective) {
  Algorithm1Options options;
  options.objective = objective;
  options.criterion = objective == Objective::kReliability
                          ? ReallocationCriterion::kReliability
                          : ReallocationCriterion::kSpeed;
  options.max_iterations = 3;
  options.conv.cells = 4096;
  return options;
}

TEST(Algorithm1Engine, ReproducesSeedPoliciesExponentialMeanTime) {
  const auto r = Algorithm1(table2_options(Objective::kMeanExecutionTime))
                     .devise(five_server(ModelFamily::kExponential, false));
  EXPECT_EQ(r.iterations, 3);
  EXPECT_TRUE(r.converged);
  expect_policy(r.policy,
                {{0, 3, 4}, {0, 4, 4}, {1, 3, 3}, {1, 4, 3}, {2, 4, 2}});
}

TEST(Algorithm1Engine, ReproducesSeedPoliciesPareto1MeanTime) {
  const auto r = Algorithm1(table2_options(Objective::kMeanExecutionTime))
                     .devise(five_server(ModelFamily::kPareto1, false));
  EXPECT_EQ(r.iterations, 3);
  EXPECT_TRUE(r.converged);
  expect_policy(r.policy,
                {{0, 3, 4}, {0, 4, 5}, {1, 3, 4}, {1, 4, 4}, {2, 4, 3}});
}

TEST(Algorithm1Engine, ReproducesSeedPoliciesReliability) {
  // Under severe delays the reliability objective keeps every task local.
  for (const ModelFamily family :
       {ModelFamily::kExponential, ModelFamily::kPareto1}) {
    const auto r = Algorithm1(table2_options(Objective::kReliability))
                       .devise(five_server(family, true));
    EXPECT_EQ(r.iterations, 2);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.policy.is_identity());
  }
}

TEST(Algorithm1Engine, BaselineModeMatchesSharedWorkspace) {
  // share_workspace = false re-does every subproblem's lattice work on the
  // same fixed grids: the devised policy must be bit-identical — this is
  // the equivalence the policy-search bench's speedup claim rests on.
  Algorithm1Options shared = table2_options(Objective::kMeanExecutionTime);
  shared.conv.cells = 2048;
  Algorithm1Options baseline = shared;
  baseline.share_workspace = false;

  const DcsScenario s = five_server(ModelFamily::kExponential, false);
  const auto a = Algorithm1(shared).devise(s);
  const auto b = Algorithm1(baseline).devise(s);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = 0; j < s.size(); ++j) {
      if (i != j) {
        EXPECT_EQ(a.policy(i, j), b.policy(i, j));
      }
    }
  }
}

TEST(Algorithm1Engine, CallerWorkspaceIsReusedAcrossDevises) {
  Algorithm1Options options = table2_options(Objective::kMeanExecutionTime);
  options.conv.cells = 2048;
  options.workspace = std::make_shared<core::LatticeWorkspace>();
  const DcsScenario s = five_server(ModelFamily::kExponential, false);

  const Algorithm1 algorithm(options);
  const auto cold = algorithm.devise(s);
  const core::WorkspaceStats after_cold = options.workspace->stats();
  EXPECT_GT(after_cold.hits(), 0u);
  EXPECT_GT(after_cold.misses(), 0u);

  const auto warm = algorithm.devise(s);
  // The warm pass adds no lattice work — every grid was already resident —
  // and lands on the same policy.
  EXPECT_EQ(options.workspace->stats().misses(), after_cold.misses());
  EXPECT_GT(options.workspace->stats().hits(), after_cold.hits());
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = 0; j < s.size(); ++j) {
      if (i != j) {
        EXPECT_EQ(cold.policy(i, j), warm.policy(i, j));
      }
    }
  }
}

}  // namespace
}  // namespace agedtr::policy
