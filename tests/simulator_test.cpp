// The discrete-event simulator: deterministic laws give hand-computable
// trajectories; failure/FN semantics follow the paper's model contract.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/dist/deterministic.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/sim/simulator.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::sim {
namespace {

using core::DcsScenario;
using core::DtrPolicy;
using core::ServerSpec;

dist::DistPtr det(double c) { return std::make_shared<dist::Deterministic>(c); }

DcsScenario deterministic_scenario(int m1, int m2, double w1, double w2,
                                   double z, double y1 = 0.0,
                                   double y2 = 0.0) {
  std::vector<ServerSpec> servers = {
      {m1, det(w1), y1 > 0.0 ? det(y1) : nullptr},
      {m2, det(w2), y2 > 0.0 ? det(y2) : nullptr}};
  return core::make_uniform_network_scenario(std::move(servers), det(z),
                                             det(0.1));
}

TEST(Simulator, DeterministicNoPolicy) {
  const DcsScenario s = deterministic_scenario(3, 2, 2.0, 1.0, 5.0);
  const DcsSimulator sim(s);
  random::Rng rng(1);
  const SimResult r = sim.run(DtrPolicy(2), rng);
  ASSERT_TRUE(r.completed);
  // Server 1 finishes at 6, server 2 at 2.
  EXPECT_NEAR(r.completion_time, 6.0, 1e-12);
  EXPECT_EQ(r.tasks_served[0], 3);
  EXPECT_EQ(r.tasks_served[1], 2);
  EXPECT_NEAR(r.busy_time[0], 6.0, 1e-12);
  EXPECT_NEAR(r.busy_time[1], 2.0, 1e-12);
}

TEST(Simulator, DeterministicWithTransfer) {
  // Move 2 tasks from server 1 to server 2: they arrive at t = 5 after
  // server 2 drained its own queue at t = 2; it then works 5 → 7.
  // Server 1 finishes its single remaining task at t = 2.
  const DcsScenario s = deterministic_scenario(3, 2, 2.0, 1.0, 5.0);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  const DcsSimulator sim(s);
  random::Rng rng(1);
  const SimResult r = sim.run(policy, rng);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.completion_time, 7.0, 1e-12);
  EXPECT_EQ(r.tasks_served[0], 1);
  EXPECT_EQ(r.tasks_served[1], 4);
}

TEST(Simulator, ArrivalDuringBusyPeriodAppendsToQueue) {
  // Transfer arrives at t = 1 while server 2 still works: no idle gap, so
  // server 2 finishes at 2·1 + 2·1 = 4.
  const DcsScenario s = deterministic_scenario(3, 2, 2.0, 1.0, 1.0);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  const DcsSimulator sim(s);
  random::Rng rng(1);
  const SimResult r = sim.run(policy, rng);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.completion_time, 4.0, 1e-12);
}

TEST(Simulator, FailureStrandsQueuedTasks) {
  // Server 1 fails at t = 3 with tasks left (needs 6 s of work).
  const DcsScenario s = deterministic_scenario(3, 0, 2.0, 1.0, 5.0, 3.0, 0.0);
  const DcsSimulator sim(s);
  random::Rng rng(1);
  const SimResult r = sim.run(DtrPolicy(2), rng);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(std::isinf(r.completion_time));
  EXPECT_EQ(r.tasks_lost[0], 2);  // one task served at t = 2, two stranded
  EXPECT_NEAR(r.failure_time[0], 3.0, 1e-12);
}

TEST(Simulator, FailureAfterDrainIsHarmless) {
  const DcsScenario s = deterministic_scenario(2, 0, 1.0, 1.0, 5.0, 10.0, 0.0);
  const DcsSimulator sim(s);
  random::Rng rng(1);
  const SimResult r = sim.run(DtrPolicy(2), rng);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.completion_time, 2.0, 1e-12);
}

TEST(Simulator, GroupBoundForDeadServerIsLost) {
  // Server 2 fails at t = 1; the group sent to it arrives at t = 5 and the
  // workload is stranded (reliable message passing, no recovery).
  const DcsScenario s =
      deterministic_scenario(3, 0, 2.0, 1.0, 5.0, 0.0, 1.0);
  DtrPolicy policy(2);
  policy.set(0, 1, 1);
  const DcsSimulator sim(s);
  random::Rng rng(1);
  const SimResult r = sim.run(policy, rng);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.tasks_lost[1], 1);
}

TEST(Simulator, FnPacketsDeliveredOnFailure) {
  const DcsScenario s = deterministic_scenario(1, 1, 1.0, 4.0, 5.0, 0.0, 2.0);
  const DcsSimulator sim(s);
  random::Rng rng(1);
  const SimResult r = sim.run(DtrPolicy(2), rng);
  // Server 2 fails at t = 2 mid-service: workload lost, but the FN packet
  // to server 1 was scheduled (delivered at 2.1 — before the early stop
  // only if the loss hadn't already ended the run; here loss is immediate,
  // so we only require the failure to be recorded).
  EXPECT_FALSE(r.completed);
  EXPECT_NEAR(r.failure_time[1], 2.0, 1e-12);
}

TEST(Simulator, FnDeliveryObservableWhenWorkloadSurvives) {
  // Server 2 has nothing and fails at t = 2; server 1 works until t = 4.
  // The FN packet 2 → 1 (delay 0.1) must be delivered at 2.1.
  const DcsScenario s = deterministic_scenario(4, 0, 1.0, 1.0, 5.0, 0.0, 2.0);
  const DcsSimulator sim(s);
  random::Rng rng(1);
  const SimResult r = sim.run(DtrPolicy(2), rng);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.fn_deliveries.size(), 1u);
  EXPECT_EQ(r.fn_deliveries[0].from, 1u);
  EXPECT_EQ(r.fn_deliveries[0].to, 0u);
  EXPECT_NEAR(r.fn_deliveries[0].time, 2.1, 1e-12);
}

TEST(Simulator, EmptyWorkloadCompletesAtZero) {
  const DcsScenario s = deterministic_scenario(0, 0, 1.0, 1.0, 5.0);
  const DcsSimulator sim(s);
  random::Rng rng(1);
  const SimResult r = sim.run(DtrPolicy(2), rng);
  EXPECT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.completion_time, 0.0);
}

TEST(Simulator, ReproducibleForSameSeed) {
  std::vector<ServerSpec> servers = {
      {20, dist::Exponential::with_mean(2.0),
       dist::Exponential::with_mean(100.0)},
      {10, dist::Exponential::with_mean(1.0),
       dist::Exponential::with_mean(80.0)}};
  const DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(3.0),
      dist::Exponential::with_mean(0.2));
  DtrPolicy policy(2);
  policy.set(0, 1, 5);
  const DcsSimulator sim(s);
  random::Rng rng1(42), rng2(42);
  const SimResult a = sim.run(policy, rng1);
  const SimResult b = sim.run(policy, rng2);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(Simulator, QueueInfoBroadcastsRun) {
  std::vector<ServerSpec> servers = {
      {5, dist::Exponential::with_mean(1.0), nullptr},
      {5, dist::Exponential::with_mean(1.0), nullptr}};
  const DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(1.0),
      dist::Exponential::with_mean(0.1));
  SimulatorOptions opts;
  opts.queue_info_period = 0.5;
  const DcsSimulator sim(s, opts);
  random::Rng rng(3);
  const SimResult r = sim.run(DtrPolicy(2), rng);
  EXPECT_TRUE(r.completed);
  // Info broadcasts add events beyond the 10 services.
  EXPECT_GT(r.events_processed, 12u);
}

TEST(Simulator, EventBudgetTruncatesInsteadOfThrowing) {
  std::vector<ServerSpec> servers = {
      {100, dist::Exponential::with_mean(1.0), nullptr}};
  DcsScenario s;
  s.servers = std::move(servers);
  s.transfer = {{nullptr}};
  SimulatorOptions opts;
  opts.max_events = 10;
  const DcsSimulator sim(s, opts);
  random::Rng rng(1);
  const SimResult r = sim.run(DtrPolicy(1), rng);
  EXPECT_TRUE(r.truncated);
  EXPECT_FALSE(r.completed);
  EXPECT_LE(r.events_processed, 10u);
}

TEST(Simulator, EventBudgetLargeEnoughDoesNotTruncate) {
  const DcsScenario s = deterministic_scenario(3, 2, 2.0, 1.0, 5.0);
  SimulatorOptions opts;
  opts.max_events = 100;
  const DcsSimulator sim(s, opts);
  random::Rng rng(1);
  const SimResult r = sim.run(DtrPolicy(2), rng);
  EXPECT_FALSE(r.truncated);
  EXPECT_TRUE(r.completed);
}

TEST(Simulator, BusyTimeNeverExceedsCompletionTime) {
  std::vector<ServerSpec> servers = {
      {15, dist::Exponential::with_mean(1.0), nullptr},
      {5, dist::Exponential::with_mean(0.5), nullptr}};
  const DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(2.0),
      dist::Exponential::with_mean(0.1));
  DtrPolicy policy(2);
  policy.set(0, 1, 5);
  const DcsSimulator sim(s);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    random::Rng rng(seed);
    const SimResult r = sim.run(policy, rng);
    ASSERT_TRUE(r.completed);
    for (double b : r.busy_time) {
      EXPECT_LE(b, r.completion_time + 1e-9);
      EXPECT_GE(b, 0.0);
    }
  }
}

}  // namespace
}  // namespace agedtr::sim
