// Replication & slowdown scenario pack: work-unit enumeration and plan
// construction, cancel-on-first-completion semantics (deterministic wins,
// ties, cancellation bookkeeping), the r = 1 bit-identity contract, the
// shared stall/slowdown window machinery, counter-based Monte-Carlo
// sub-streams, min-of-r laws, the analytic completion-time bounds and the
// (reallocation × replication) searches.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "agedtr/core/replication.hpp"
#include "agedtr/core/replication_bounds.hpp"
#include "agedtr/core/regeneration.hpp"
#include "agedtr/dist/compose.hpp"
#include "agedtr/dist/deterministic.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/uniform.hpp"
#include "agedtr/policy/algorithm1.hpp"
#include "agedtr/policy/evaluation_engine.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/random/rng.hpp"
#include "agedtr/policy/allocation_search.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/sim/replication_study.hpp"
#include "agedtr/sim/simulator.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr {
namespace {

using core::DcsScenario;
using core::DtrPolicy;
using core::ReplicationPlan;
using core::ServerSpec;
using core::WorkUnit;

dist::DistPtr det(double c) { return std::make_shared<dist::Deterministic>(c); }

DcsScenario deterministic_scenario(int m1, int m2, double w1, double w2,
                                   double z) {
  std::vector<ServerSpec> servers = {{m1, det(w1), nullptr},
                                     {m2, det(w2), nullptr}};
  return core::make_uniform_network_scenario(std::move(servers), det(z),
                                             det(0.1));
}

DcsScenario stochastic_scenario(bool failures = true) {
  std::vector<ServerSpec> servers = {
      {8, dist::Exponential::with_mean(2.0),
       failures ? dist::Exponential::with_mean(100.0) : nullptr},
      {4, dist::Exponential::with_mean(1.0),
       failures ? dist::Exponential::with_mean(80.0) : nullptr}};
  return core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(3.0),
      dist::Exponential::with_mean(0.2));
}

DcsScenario three_server_scenario(std::vector<double> service_means,
                                  std::vector<int> tasks) {
  std::vector<ServerSpec> servers;
  for (std::size_t j = 0; j < service_means.size(); ++j) {
    servers.push_back(
        {tasks[j], dist::Exponential::with_mean(service_means[j]), nullptr});
  }
  return core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(2.0),
      dist::Exponential::with_mean(0.2));
}

// --- Work units and plans. -----------------------------------------------

TEST(WorkUnits, CanonicalOrderMatchesApplyPolicy) {
  const DcsScenario s = three_server_scenario({3.0, 1.0, 2.0}, {5, 2, 0});
  DtrPolicy policy(3);
  policy.set(0, 1, 2);
  policy.set(0, 2, 1);
  policy.set(1, 2, 1);
  const std::vector<WorkUnit> units = core::enumerate_work_units(s, policy);
  // Destination 0: local block 5 - 3 = 2. Destination 1: local 2 - 1 = 1,
  // then inbound 0 -> 1. Destination 2: no local tasks, inbound 0 -> 2 and
  // 1 -> 2 in source order.
  ASSERT_EQ(units.size(), 5u);
  EXPECT_EQ(units[0].origin, 0u);
  EXPECT_EQ(units[0].destination, 0u);
  EXPECT_EQ(units[0].tasks, 2);
  EXPECT_EQ(units[1].origin, 1u);
  EXPECT_EQ(units[1].destination, 1u);
  EXPECT_EQ(units[1].tasks, 1);
  EXPECT_EQ(units[2].origin, 0u);
  EXPECT_EQ(units[2].destination, 1u);
  EXPECT_EQ(units[2].tasks, 2);
  EXPECT_EQ(units[3].origin, 0u);
  EXPECT_EQ(units[3].destination, 2u);
  EXPECT_EQ(units[3].tasks, 1);
  EXPECT_EQ(units[4].origin, 1u);
  EXPECT_EQ(units[4].destination, 2u);
  EXPECT_EQ(units[4].tasks, 1);
}

TEST(ReplicationPlan, UniformPlanRanksHostsBySpeed) {
  const DcsScenario s = three_server_scenario({3.0, 1.0, 2.0}, {4, 2, 1});
  const DtrPolicy identity(3);
  const ReplicationPlan plan =
      core::make_uniform_replication(s, identity, 2);
  ASSERT_EQ(plan.replica_sets.size(), 3u);
  // Primary first, then the fastest other server (mean 1.0 at index 1,
  // mean 2.0 at index 2).
  EXPECT_EQ(plan.replica_sets[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(plan.replica_sets[1], (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(plan.replica_sets[2], (std::vector<std::size_t>{2, 1}));
  EXPECT_FALSE(plan.is_identity());
  EXPECT_EQ(plan.max_factor(), 2u);
  EXPECT_NO_THROW(plan.validate(s, identity));

  // Factor beyond the server count clamps.
  const ReplicationPlan all = core::make_uniform_replication(s, identity, 9);
  EXPECT_EQ(all.max_factor(), 3u);

  const ReplicationPlan one = core::make_uniform_replication(s, identity, 1);
  EXPECT_TRUE(one.is_identity());
}

TEST(ReplicationPlan, ValidateRejectsMalformedPlans) {
  const DcsScenario s = stochastic_scenario(false);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  const std::vector<WorkUnit> units = core::enumerate_work_units(s, policy);
  ASSERT_EQ(units.size(), 3u);

  ReplicationPlan wrong_count;
  wrong_count.replica_sets = {{0}, {1}};
  EXPECT_THROW(wrong_count.validate(s, policy), InvalidArgument);

  ReplicationPlan wrong_primary;
  wrong_primary.replica_sets = {{1, 0}, {1}, {1}};
  EXPECT_THROW(wrong_primary.validate(s, policy), InvalidArgument);

  ReplicationPlan duplicate_host;
  duplicate_host.replica_sets = {{0, 0}, {1}, {1}};
  EXPECT_THROW(duplicate_host.validate(s, policy), InvalidArgument);

  ReplicationPlan out_of_range;
  out_of_range.replica_sets = {{0, 7}, {1}, {1}};
  EXPECT_THROW(out_of_range.validate(s, policy), InvalidArgument);

  // The simulator validates at run(), not construction.
  sim::SimulatorOptions opts;
  opts.replication = wrong_count;
  const sim::DcsSimulator simulator(s, opts);
  random::Rng rng(1);
  EXPECT_THROW((void)simulator.run(policy, rng), InvalidArgument);
}

// --- r = 1 bit-identity. -------------------------------------------------

TEST(Replication, IdentityPlanIsBitIdenticalToNoPlan) {
  const DcsScenario s = stochastic_scenario();
  DtrPolicy policy(2);
  policy.set(0, 1, 3);

  const sim::DcsSimulator plain(s);
  sim::SimulatorOptions opts;
  opts.replication = core::make_uniform_replication(s, policy, 1);
  ASSERT_TRUE(opts.replication->is_identity());
  const sim::DcsSimulator replicated(s, opts);

  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    random::Rng rng1(seed), rng2(seed);
    const sim::SimResult a = plain.run(policy, rng1);
    const sim::SimResult b = replicated.run(policy, rng2);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.completion_time, b.completion_time);  // bitwise, no NEAR
    EXPECT_EQ(a.events_processed, b.events_processed);
    EXPECT_EQ(a.busy_time, b.busy_time);
    EXPECT_EQ(a.tasks_served, b.tasks_served);
    EXPECT_EQ(a.tasks_lost, b.tasks_lost);
    EXPECT_EQ(b.replicas_cancelled, 0u);
    // And the streams advanced identically: the next draw agrees.
    EXPECT_EQ(rng1.next_double(), rng2.next_double());
  }
}

// --- Cancel-on-first-completion semantics. -------------------------------

TEST(Replication, ReplicaWinCancelsPrimaryDeterministically) {
  // Primary (server 0): 2 tasks at 4 s each -> alone it finishes at 8.
  // Replica at server 1: arrives at 3 (one group transfer), 2 tasks at
  // 1 s -> finishes at 5 and cancels the primary mid-task.
  const DcsScenario s = deterministic_scenario(2, 0, 4.0, 1.0, 3.0);
  const DtrPolicy identity(2);
  ReplicationPlan plan;
  plan.replica_sets = {{0, 1}};
  sim::SimulatorOptions opts;
  opts.replication = plan;
  const sim::DcsSimulator simulator(s, opts);
  random::Rng rng(7);
  const sim::SimResult r = simulator.run(identity, rng);
  EXPECT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.completion_time, 5.0);
  EXPECT_EQ(r.replicas_cancelled, 1u);
  // Server 0 completed exactly one task (at t = 4) before the cancellation;
  // the in-flight second task contributes neither service nor busy time.
  EXPECT_EQ(r.tasks_served[0], 1);
  EXPECT_EQ(r.tasks_served[1], 2);
  EXPECT_DOUBLE_EQ(r.busy_time[0], 4.0);
  EXPECT_DOUBLE_EQ(r.busy_time[1], 2.0);
}

TEST(Replication, SimultaneousCompletionBreaksTiesByScheduleOrder) {
  // Primary finishes its single 4 s task at t = 4; the replica arrives at 3
  // and finishes its 1 s task at t = 4 too. The primary's completion event
  // was scheduled first (at t = 0), so it wins the FIFO tie-break.
  const DcsScenario s = deterministic_scenario(1, 0, 4.0, 1.0, 3.0);
  const DtrPolicy identity(2);
  ReplicationPlan plan;
  plan.replica_sets = {{0, 1}};
  sim::SimulatorOptions opts;
  opts.replication = plan;
  const sim::DcsSimulator simulator(s, opts);
  random::Rng rng(7);
  const sim::SimResult r = simulator.run(identity, rng);
  EXPECT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.completion_time, 4.0);
  EXPECT_EQ(r.tasks_served[0], 1);
  EXPECT_EQ(r.tasks_served[1], 0);  // cancelled in service: not served
  EXPECT_DOUBLE_EQ(r.busy_time[1], 0.0);
  EXPECT_EQ(r.replicas_cancelled, 1u);
}

TEST(Replication, ReplicationRescuesWorkloadFromServerFailure) {
  // Server 0 dies at t = 1 (before serving anything); without replication
  // the workload is lost, with a replica at server 1 it completes.
  std::vector<ServerSpec> servers = {{1, det(4.0), det(1.0)},
                                     {0, det(1.0), nullptr}};
  const DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), det(0.5), det(0.1));
  const DtrPolicy identity(2);

  const sim::DcsSimulator plain(s);
  random::Rng rng1(3);
  EXPECT_FALSE(plain.run(identity, rng1).completed);

  ReplicationPlan plan;
  plan.replica_sets = {{0, 1}};
  sim::SimulatorOptions opts;
  opts.replication = plan;
  const sim::DcsSimulator replicated(s, opts);
  random::Rng rng2(3);
  const sim::SimResult r = replicated.run(identity, rng2);
  EXPECT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.completion_time, 1.5);  // 0.5 transfer + 1 s service
}

// --- Slowdown machinery. -------------------------------------------------

TEST(Slowdown, WindowMergeNeverStacks) {
  sim::SlowdownWindow w;
  EXPECT_FALSE(w.covers(0.0));
  EXPECT_DOUBLE_EQ(w.extend(0.0, 10.0), 10.0);
  EXPECT_TRUE(w.covers(5.0));
  // Fully inside the pending window: nothing fresh.
  EXPECT_DOUBLE_EQ(w.extend(5.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(w.until, 10.0);
  // Overlap: only the part beyond the horizon is fresh.
  EXPECT_DOUBLE_EQ(w.extend(5.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(w.until, 15.0);
  // Disjoint window after the horizon.
  EXPECT_DOUBLE_EQ(w.extend(20.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(w.until, 22.0);
  EXPECT_FALSE(w.covers(22.0));
}

TEST(Slowdown, ValidateRejectsMalformedProcess) {
  sim::FaultPlan plan;
  plan.slowdown.rate = 0.1;  // active but no duration law
  EXPECT_THROW(plan.validate(), InvalidArgument);
  plan.slowdown.duration = det(5.0);
  plan.slowdown.factor = 1.0;  // factor must be < 1
  EXPECT_THROW(plan.validate(), InvalidArgument);
  plan.slowdown.factor = 0.5;
  EXPECT_NO_THROW(plan.validate());
  EXPECT_FALSE(plan.is_null());
}

TEST(Slowdown, FactorZeroSlowdownMatchesStallBitwise) {
  // The legacy stall process and a factor-0 slowdown are the same model
  // through the shared SlowdownProcess/SlowdownWindow machinery; with only
  // one of them active, runs must agree bit for bit.
  const DcsScenario s = stochastic_scenario(false);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);

  sim::SimulatorOptions stall;
  stall.faults.stall_rate = 0.05;
  stall.faults.stall_duration = dist::Exponential::with_mean(10.0);
  sim::SimulatorOptions slow;
  slow.faults.slowdown.rate = 0.05;
  slow.faults.slowdown.duration = dist::Exponential::with_mean(10.0);
  slow.faults.slowdown.factor = 0.0;

  const sim::DcsSimulator stalled(s, stall);
  const sim::DcsSimulator slowed(s, slow);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    random::Rng rng1(seed), rng2(seed);
    const sim::SimResult a = stalled.run(policy, rng1);
    const sim::SimResult b = slowed.run(policy, rng2);
    EXPECT_EQ(a.completion_time, b.completion_time);
    EXPECT_EQ(a.busy_time, b.busy_time);
    EXPECT_EQ(a.events_processed, b.events_processed);
    EXPECT_EQ(a.faults.stalls, b.faults.slowdowns);
    EXPECT_EQ(a.faults.total_stall_time, b.faults.total_slowdown_time);
    EXPECT_EQ(rng1.next_double(), rng2.next_double());
  }
}

TEST(Slowdown, PermanentHalfRateSlowdownBoundsCompletion) {
  // One server, one 10 s task, slowdown windows long enough to cover the
  // whole run at factor 1/2: completion lies in (10, 20] — the work before
  // the first (exponentially timed) onset runs at rate 1, the rest at 1/2.
  std::vector<ServerSpec> servers = {{1, det(10.0), nullptr}};
  DcsScenario s;
  s.servers = std::move(servers);
  s.transfer = {{nullptr}};
  sim::SimulatorOptions opts;
  opts.faults.slowdown.rate = 1.0;
  opts.faults.slowdown.duration = det(1e9);
  opts.faults.slowdown.factor = 0.5;
  const sim::DcsSimulator simulator(s, opts);
  const DtrPolicy identity(1);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    random::Rng rng(seed);
    const sim::SimResult r = simulator.run(identity, rng);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.completion_time, 10.0);
    EXPECT_LE(r.completion_time, 20.0);
    EXPECT_GE(r.faults.slowdowns, 1u);
    EXPECT_GT(r.faults.total_slowdown_time, 0.0);
  }
}

TEST(Slowdown, ScaleFaultPlanScalesSlowdownFrequencyOnly) {
  sim::FaultPlan base;
  base.slowdown.rate = 0.04;
  base.slowdown.duration = det(5.0);
  base.slowdown.factor = 0.25;
  const sim::FaultPlan scaled = scale_fault_plan(base, 3.0);
  EXPECT_DOUBLE_EQ(scaled.slowdown.rate, 0.12);
  EXPECT_DOUBLE_EQ(scaled.slowdown.factor, 0.25);
  EXPECT_TRUE(scale_fault_plan(base, 0.0).is_null());
}

// --- Counter-based sub-streams. ------------------------------------------

TEST(CounterRng, StreamsAreDeterministicAndSeparated) {
  random::Rng a = random::make_counter_rng(123, 5);
  random::Rng b = random::make_counter_rng(123, 5);
  random::Rng c = random::make_counter_rng(123, 6);
  random::Rng d = random::make_counter_rng(124, 5);
  for (int i = 0; i < 8; ++i) {
    const double va = a.next_double();
    EXPECT_EQ(va, b.next_double());
    EXPECT_NE(va, c.next_double());
    EXPECT_NE(va, d.next_double());
  }
}

TEST(CounterRng, MonteCarloCounterSplitPinsReplicationStreams) {
  // StreamSplit::kCounter must use exactly make_counter_rng(seed, r) for
  // replication r: a hand-rolled serial loop reproduces the estimates
  // bit for bit.
  const DcsScenario s = stochastic_scenario(false);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  sim::MonteCarloOptions mc;
  mc.replications = 64;
  mc.seed = 0xfeed;
  mc.stream_split = sim::StreamSplit::kCounter;
  const sim::MonteCarloMetrics metrics = sim::run_monte_carlo(s, policy, mc);

  const sim::DcsSimulator simulator(s);
  double total = 0.0;
  for (std::uint64_t r = 0; r < 64; ++r) {
    random::Rng rng = random::make_counter_rng(0xfeed, r);
    const sim::SimResult result = simulator.run(policy, rng);
    ASSERT_TRUE(result.completed);
    total += result.completion_time;
  }
  EXPECT_DOUBLE_EQ(metrics.mean_completion_time.center, total / 64.0);

  // The historical hash-based derivation is a different stream family.
  sim::MonteCarloOptions legacy = mc;
  legacy.stream_split = sim::StreamSplit::kSplitMix;
  const sim::MonteCarloMetrics legacy_metrics =
      sim::run_monte_carlo(s, policy, legacy);
  EXPECT_NE(legacy_metrics.mean_completion_time.center,
            metrics.mean_completion_time.center);
}

TEST(CounterRng, AutoSplitPreservesLegacyStreamsUnlessReplicating) {
  const DcsScenario s = stochastic_scenario(false);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  sim::MonteCarloOptions mc;
  mc.replications = 32;
  mc.seed = 42;

  // No plan: kAuto == kSplitMix (bit-compatible with historical runs).
  sim::MonteCarloOptions legacy = mc;
  legacy.stream_split = sim::StreamSplit::kSplitMix;
  EXPECT_EQ(sim::run_monte_carlo(s, policy, mc).mean_completion_time.center,
            sim::run_monte_carlo(s, policy, legacy)
                .mean_completion_time.center);

  // A replicating plan flips kAuto to counter streams.
  sim::MonteCarloOptions replicated = mc;
  replicated.simulator.replication =
      core::make_uniform_replication(s, policy, 2);
  sim::MonteCarloOptions replicated_counter = replicated;
  replicated_counter.stream_split = sim::StreamSplit::kCounter;
  EXPECT_EQ(sim::run_monte_carlo(s, policy, replicated)
                .mean_completion_time.center,
            sim::run_monte_carlo(s, policy, replicated_counter)
                .mean_completion_time.center);
}

// --- Min-of-r laws. ------------------------------------------------------

TEST(MinOfR, CdfIsOneMinusSurvivalProduct) {
  const std::vector<dist::DistPtr> components = {
      dist::Exponential::with_mean(2.0),
      std::make_shared<dist::Uniform>(0.5, 4.0),
      dist::Exponential::with_mean(1.0)};
  const dist::DistPtr law = dist::min_of(components);
  for (const double x : {0.0, 0.3, 0.9, 1.7, 3.2, 5.0, 9.0}) {
    double product = 1.0;
    for (const dist::DistPtr& c : components) product *= c->sf(x);
    EXPECT_NEAR(law->cdf(x), 1.0 - product, 1e-12);
    EXPECT_NEAR(law->sf(x), product, 1e-12);
  }
  // The same law through the regenerative race machinery.
  std::vector<core::Clock> clocks;
  for (const dist::DistPtr& c : components) {
    clocks.push_back({core::Clock::Kind::kService, 0, c});
  }
  const core::RegenerationAnalysis race(std::move(clocks));
  for (const double x : {0.4, 1.1, 2.6}) {
    EXPECT_NEAR(race.race_survival(x), law->sf(x), 1e-12);
  }
}

TEST(MinOfR, ExpectedMinimumIsNonIncreasingInR) {
  // No-cost replication: each added replica clock can only shorten the
  // race, so E[min] is monotone non-increasing in r.
  const std::vector<dist::DistPtr> pool = {
      dist::Exponential::with_mean(3.0), dist::Exponential::with_mean(2.0),
      std::make_shared<dist::Uniform>(1.0, 5.0),
      dist::Exponential::with_mean(1.5)};
  double previous = std::numeric_limits<double>::infinity();
  std::vector<core::Clock> clocks;
  for (const dist::DistPtr& c : pool) {
    clocks.push_back({core::Clock::Kind::kService, 0, c});
    const core::RegenerationAnalysis race(clocks);
    const double mean = race.expected_minimum();
    EXPECT_LE(mean, previous + 1e-9);
    previous = mean;
  }
}

TEST(MinOfR, AnalyticLowerBoundIsNonIncreasingInFactor) {
  const DcsScenario s = stochastic_scenario(false);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  core::ReplicationBoundsOptions options;
  double previous = std::numeric_limits<double>::infinity();
  for (int r = 1; r <= 2; ++r) {
    const core::ReplicationBounds bounds = core::replication_completion_bounds(
        s, policy, core::make_uniform_replication(s, policy, r), options);
    EXPECT_GT(bounds.mean_lower, 0.0);
    EXPECT_LE(bounds.mean_lower, previous + 1e-9);
    EXPECT_LE(bounds.mean_lower, bounds.mean_upper);
    previous = bounds.mean_lower;
  }
}

TEST(ReplicationBounds, RejectsUnsupportedInputs) {
  const DcsScenario reliable = stochastic_scenario(false);
  const DcsScenario failing = stochastic_scenario(true);
  const DtrPolicy identity(2);
  const ReplicationPlan plan =
      core::make_uniform_replication(reliable, identity, 2);
  core::ReplicationBoundsOptions options;
  options.slowdown_factor = 0.0;  // permanent stall: no finite bound
  EXPECT_THROW(core::replication_completion_bounds(reliable, identity, plan,
                                                   options),
               InvalidArgument);
  options.slowdown_factor = 1.0;
  EXPECT_THROW(core::replication_completion_bounds(failing, identity, plan,
                                                   options),
               InvalidArgument);
}

TEST(ReplicationBounds, EngineBoundsBracketAndOrderQos) {
  const DcsScenario s = stochastic_scenario(false);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  policy::EvaluationEngineOptions options;
  options.objective = policy::Objective::kQos;
  options.deadline = 40.0;
  const policy::EvaluationEngine engine(s, options);
  const core::ReplicationBounds bounds = engine.replication_bounds(
      policy, core::make_uniform_replication(s, policy, 2), 0.5);
  EXPECT_GT(bounds.mean_lower, 0.0);
  EXPECT_GE(bounds.mean_upper, bounds.mean_lower);
  EXPECT_GE(bounds.qos_upper, bounds.qos_lower);
  EXPECT_GE(bounds.qos_lower, 0.0);
  EXPECT_LE(bounds.qos_upper, 1.0);
}

// --- The study grid: brackets and the tradeoff. --------------------------

TEST(ReplicationStudy, BoundsBracketMonteCarloAndSlowdownsFlipTheOrder) {
  const DcsScenario s = stochastic_scenario(false);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);

  sim::ReplicationStudyOptions options;
  options.factors = {1, 2};
  options.slowdown_intensities = {0.0, 3.0};
  options.base_slowdown.rate = 0.05;
  options.base_slowdown.duration = dist::Exponential::with_mean(30.0);
  options.base_slowdown.factor = 0.1;
  options.replications = 1'500;
  options.seed = 0x5eed;
  options.deadline = 60.0;
  const std::vector<sim::ReplicationStudyRow> rows =
      sim::run_replication_study(s, policy, options);
  ASSERT_EQ(rows.size(), 4u);

  double mean[3][4];  // [factor][intensity index]
  for (const sim::ReplicationStudyRow& row : rows) {
    EXPECT_EQ(row.truncated, 0u);
    // The analytic bracket holds up to Monte-Carlo noise.
    const double slack = 0.05 * row.mc_mean + 1.5 * row.mc_mean_halfwidth;
    EXPECT_GE(row.mc_mean, row.bound_lower - slack)
        << "r=" << row.factor << " intensity=" << row.intensity;
    EXPECT_LE(row.mc_mean, row.bound_upper + slack)
        << "r=" << row.factor << " intensity=" << row.intensity;
    EXPECT_LE(row.qos_lower, row.mc_qos + 0.05);
    EXPECT_GE(row.qos_upper, row.mc_qos - 0.05);
    mean[row.factor][row.intensity > 0.0 ? 1 : 0] = row.mc_mean;
    if (row.factor == 1) {
      EXPECT_EQ(row.replicas_cancelled, 0u);
    } else {
      EXPECT_GT(row.replicas_cancelled, 0u);
    }
    if (row.intensity == 0.0) {
      EXPECT_EQ(row.slowdowns, 0u);
    } else {
      EXPECT_GT(row.slowdowns, 0u);
    }
  }
  // Heavy straggling: hedging the slow replicas wins outright, and by much
  // more than whatever hedging gains (or contention costs) at intensity 0.
  EXPECT_LT(mean[2][1], mean[1][1]);
  EXPECT_GT(mean[1][1] - mean[2][1], mean[1][0] - mean[2][0]);
}

// --- Joint (reallocation × replication) searches. ------------------------

TEST(ReplicatedSearch, FindsJointOptimumWithDeterministicTies) {
  const policy::TwoServerPolicySearch search(2, 2);
  policy::ReplicatedSearchOptions options;
  options.max_factor = 3;
  std::size_t calls = 0;
  const policy::ReplicatedEvaluator evaluator =
      [&calls](const core::DtrPolicy& p, int factor) {
        ++calls;
        const int l12 = p.outgoing(0);
        const int l21 = p.outgoing(1);
        return std::abs(l12 - 1) + std::abs(l21 - 1) +
               std::abs(factor - 2) + 0.0;
      };
  const policy::ReplicatedSearchResult result =
      search.optimize_replicated(evaluator, options);
  EXPECT_EQ(result.best.l12, 1);
  EXPECT_EQ(result.best.l21, 1);
  EXPECT_EQ(result.best.factor, 2);
  EXPECT_DOUBLE_EQ(result.best.value, 0.0);
  EXPECT_EQ(result.evaluations, calls);
  EXPECT_EQ(result.evaluations, 27u);  // 3 × 3 × 3, nothing pruned
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.pruned, 0u);
}

TEST(ReplicatedSearch, LowerBoundPrunesWithoutChangingTheOptimum) {
  const policy::TwoServerPolicySearch search(3, 3);
  const auto objective = [](const core::DtrPolicy& p, int factor) {
    return 1.0 * p.outgoing(0) + 2.0 * p.outgoing(1) + 0.5 * factor;
  };
  policy::ReplicatedSearchOptions plain;
  plain.max_factor = 2;
  const policy::ReplicatedSearchResult full =
      search.optimize_replicated(objective, plain);

  policy::ReplicatedSearchOptions pruned = plain;
  pruned.lower_bound = objective;  // exact bound: maximal pruning
  const policy::ReplicatedSearchResult fast =
      search.optimize_replicated(objective, pruned);
  EXPECT_EQ(fast.best.l12, full.best.l12);
  EXPECT_EQ(fast.best.l21, full.best.l21);
  EXPECT_EQ(fast.best.factor, full.best.factor);
  EXPECT_DOUBLE_EQ(fast.best.value, full.best.value);
  EXPECT_GT(fast.pruned, 0u);
  EXPECT_LT(fast.evaluations, full.evaluations);
  EXPECT_EQ(fast.evaluations + fast.pruned, full.evaluations);
}

TEST(ReplicatedSearch, TinyBudgetStillReturnsTheFirstIncumbent) {
  const policy::TwoServerPolicySearch search(4, 4);
  policy::ReplicatedSearchOptions options;
  options.max_factor = 2;
  options.budget.max_seconds = 1e-9;  // expires immediately
  std::size_t calls = 0;
  const policy::ReplicatedSearchResult result = search.optimize_replicated(
      [&calls](const core::DtrPolicy&, int) {
        ++calls;
        return 1.0;
      },
      options);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_GE(calls, 1u);  // the first point always evaluates
  EXPECT_LT(calls, 50u);
  EXPECT_EQ(result.best.l12, 0);
  EXPECT_EQ(result.best.l21, 0);
  EXPECT_EQ(result.best.factor, 1);
}

TEST(Algorithm1, SelectsReplicationFactorFromAnalyticBounds) {
  const DcsScenario s = stochastic_scenario(false);
  policy::Algorithm1Options options;
  options.max_replication = 2;
  options.slowdown_factor = 0.2;  // heavy straggling: bounds favour hedging
  const policy::Algorithm1Result result = policy::Algorithm1(options).devise(s);
  EXPECT_GE(result.replication_factor, 1);
  EXPECT_LE(result.replication_factor, 2);
  EXPECT_NO_THROW(result.replication.validate(s, result.policy));

  policy::Algorithm1Options off;
  off.max_replication = 1;
  const policy::Algorithm1Result plain = policy::Algorithm1(off).devise(s);
  EXPECT_EQ(plain.replication_factor, 1);
  EXPECT_TRUE(plain.replication.is_identity());
  EXPECT_EQ(plain.policy.size(), result.policy.size());
}

TEST(AllocationSearch, ReplicationPostPassScoresFactors) {
  const DcsScenario s = stochastic_scenario(false);
  policy::AllocationSearchOptions options;
  options.analytic = true;
  options.replications = 400;
  options.replication_factors = {1, 2};
  options.replication_faults.slowdown.rate = 0.1;
  options.replication_faults.slowdown.duration =
      dist::Exponential::with_mean(30.0);
  options.replication_faults.slowdown.factor = 0.1;
  const policy::AllocationSearchResult result =
      policy::optimal_allocation(s, options);
  EXPECT_GE(result.replication_factor, 1);
  EXPECT_LE(result.replication_factor, 2);
  EXPECT_TRUE(std::isfinite(result.replicated_value));
  EXPECT_GT(result.replicated_value, 0.0);

  policy::AllocationSearchOptions off = options;
  off.replication_factors.clear();
  const policy::AllocationSearchResult plain = policy::optimal_allocation(s, off);
  EXPECT_EQ(plain.replication_factor, 1);
  EXPECT_TRUE(std::isnan(plain.replicated_value));
}

}  // namespace
}  // namespace agedtr
