// Parameterized property sweeps across distribution families: lattice
// conservation laws, solver monotonicity/invariance properties, and
// policy-metric sanity relations that must hold for *every* law.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "agedtr/core/convolution.hpp"
#include "agedtr/dist/aged.hpp"
#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/gamma.hpp"
#include "agedtr/dist/pareto.hpp"
#include "agedtr/dist/phase_type.hpp"
#include "agedtr/dist/sum_iid.hpp"
#include "agedtr/dist/uniform.hpp"
#include "agedtr/dist/lattice_bridge.hpp"
#include "agedtr/dist/weibull.hpp"
#include "agedtr/numerics/fft.hpp"
#include "agedtr/numerics/quadrature.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/random/rng.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr {
namespace {

struct LawCase {
  std::string label;
  dist::DistPtr law;
  // Tolerance for quadrature-vs-analytic consistency checks. Laws whose
  // cdf itself is numeric (lattice-backed sums) or heavy-tailed (slowly
  // converging tail integrals) get a looser budget.
  double quad_tol = 1e-6;
};

std::vector<LawCase> laws() {
  return {
      {"exponential", dist::Exponential::with_mean(1.5), 1e-7},
      {"pareto_heavy", dist::Pareto::with_mean(1.5, 1.5), 1e-4},
      {"pareto_light", dist::Pareto::with_mean(1.5, 3.5), 1e-6},
      {"uniform", dist::Uniform::with_mean(1.5), 1e-7},
      {"shifted_exponential", dist::ShiftedExponential::with_mean(1.5), 1e-7},
      {"gamma", std::make_shared<dist::Gamma>(2.0, 0.75), 1e-6},
      {"weibull", dist::Weibull::with_mean(1.5, 1.7), 1e-6},
      // Composite laws: the i.i.d. sum behind per-task transfer scaling,
      // both canonical phase-type shapes, and the paper's central aged view.
      {"sum_iid_exp", dist::sum_iid(dist::Exponential::with_mean(0.3), 5),
       5e-3},
      {"erlang3", dist::PhaseType::erlang(3, 2.0), 1e-6},
      {"coxian2", dist::PhaseType::coxian({2.0, 1.0}, {0.6}), 1e-6},
      {"aged_weibull", dist::aged(dist::Weibull::with_mean(2.0, 1.7), 0.7),
       1e-6},
  };
}

class LatticeProperty : public ::testing::TestWithParam<LawCase> {
 protected:
  static constexpr double kDt = 0.005;
  static constexpr std::size_t kN = 8192;
};

INSTANTIATE_TEST_SUITE_P(AllLaws, LatticeProperty,
                         ::testing::ValuesIn(laws()),
                         [](const ::testing::TestParamInfo<LawCase>& param_info) {
                           return param_info.param.label;
                         });

TEST_P(LatticeProperty, MassConservedThroughConvolutionChains) {
  const auto d = dist::discretize(*GetParam().law, kDt, kN);
  EXPECT_NEAR(d.total(), 1.0, 1e-9);
  EXPECT_NEAR(d.convolve(d).total(), 1.0, 1e-8);
  EXPECT_NEAR(d.convolve_power(5).total(), 1.0, 1e-8);
}

TEST_P(LatticeProperty, GridMeanTracksDistributionMean) {
  const auto d = dist::discretize(*GetParam().law, kDt, kN);
  const double horizon = kDt * static_cast<double>(kN);
  // grid mean + tail-adjusted remainder brackets the true mean.
  const double lower = d.grid_mean();
  const double upper = lower + d.tail() * horizon +
                       GetParam().law->integral_sf(horizon);
  EXPECT_LE(lower, GetParam().law->mean() + 0.02);
  EXPECT_GE(upper + 0.05 * GetParam().law->mean(), GetParam().law->mean());
}

TEST_P(LatticeProperty, ConvolutionCommutes) {
  const auto a = dist::discretize(*GetParam().law, kDt, kN);
  const auto b =
      dist::discretize(dist::Exponential(1.0), kDt, kN);
  const auto ab = a.convolve(b);
  const auto ba = b.convolve(a);
  for (std::size_t i = 0; i < kN; i += 97) {
    EXPECT_NEAR(ab.mass(i), ba.mass(i), 1e-12);
  }
  EXPECT_NEAR(ab.tail(), ba.tail(), 1e-12);
}

TEST_P(LatticeProperty, MaxOfIsCommutativeAndDominates) {
  const auto a = dist::discretize(*GetParam().law, kDt, kN);
  const auto b = dist::discretize(dist::Uniform(0.0, 2.0), kDt, kN);
  const auto m1 = numerics::LatticeDensity::max_of(a, b);
  const auto m2 = numerics::LatticeDensity::max_of(b, a);
  for (std::size_t i = 0; i < kN; i += 131) {
    EXPECT_NEAR(m1.mass(i), m2.mass(i), 1e-12);
    // F_max <= min(F_a, F_b): the max is stochastically larger than both.
    EXPECT_LE(m1.cdf(i), a.cdf(i) + 1e-12);
    EXPECT_LE(m1.cdf(i), b.cdf(i) + 1e-12);
  }
}

TEST_P(LatticeProperty, MaxWithZeroIsIdentity) {
  const auto a = dist::discretize(*GetParam().law, kDt, kN);
  const auto z = numerics::LatticeDensity::zero(kDt, kN);
  const auto m = numerics::LatticeDensity::max_of(a, z);
  for (std::size_t i = 0; i < kN; i += 61) {
    EXPECT_NEAR(m.cdf(i), a.cdf(i), 1e-12);
  }
}

// ---- transform properties ---------------------------------------------------
// The rfft/irfft pair underneath every lattice convolution, pinned to the
// textbook transform laws on each family's discretized mass vector. These
// are the per-transform guarantees the end-to-end differential harness
// (fft_differential_test) composes into whole-pipeline bounds.

class TransformProperty : public ::testing::TestWithParam<LawCase> {
 protected:
  static constexpr double kDt = 0.005;
  static constexpr std::size_t kN = 8192;

  // The padded mass vector every convolution of two kN-cell densities
  // transforms: the realistic spectral content for these laws.
  static std::vector<double> padded_masses(const dist::Distribution& law) {
    const auto lattice = dist::discretize(law, kDt, kN);
    std::vector<double> x(numerics::next_pow2(2 * kN - 1), 0.0);
    std::copy(lattice.masses().begin(), lattice.masses().end(), x.begin());
    return x;
  }
};

INSTANTIATE_TEST_SUITE_P(AllLaws, TransformProperty,
                         ::testing::ValuesIn(laws()),
                         [](const ::testing::TestParamInfo<LawCase>& param_info) {
                           return param_info.param.label;
                         });

TEST_P(TransformProperty, RoundTripRecoversMasses) {
  // irfft(rfft(x)) == x to round-off: the invariant that makes the
  // frequency-domain plan cache transparent to every caller.
  const auto x = padded_masses(*GetParam().law);
  const auto back = numerics::irfft(numerics::rfft(x), x.size());
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(back[i], x[i], 1e-12) << "cell " << i;
  }
}

TEST_P(TransformProperty, ParsevalEnergyConserved) {
  // Σ|x|² == (Σ_k w_k·|X_k|²)/n with the half-spectrum's interior bins
  // counted twice (they stand for conjugate pairs).
  const auto x = padded_masses(*GetParam().law);
  const auto spectrum = numerics::rfft(x);
  double time_energy = 0.0;
  for (double v : x) time_energy += v * v;
  double freq_energy = 0.0;
  for (std::size_t k = 0; k < spectrum.size(); ++k) {
    const double weight =
        (k == 0 || k + 1 == spectrum.size()) ? 1.0 : 2.0;
    freq_energy += weight * std::norm(spectrum[k]);
  }
  freq_energy /= static_cast<double>(x.size());
  EXPECT_NEAR(freq_energy, time_energy,
              1e-12 * std::max(time_energy, 1.0));
}

TEST_P(TransformProperty, DcBinIsTotalMassAndSpectrumIsBounded) {
  // X_0 = Σx (the lattice's on-grid mass); |X_k| <= Σ|x| everywhere.
  const auto x = padded_masses(*GetParam().law);
  const auto spectrum = numerics::rfft(x);
  double total = 0.0;
  for (double v : x) total += v;
  EXPECT_NEAR(spectrum[0].real(), total, 1e-12);
  EXPECT_NEAR(spectrum[0].imag(), 0.0, 1e-12);
  for (const auto& bin : spectrum) {
    EXPECT_LE(std::abs(bin), total + 1e-9);
  }
}

TEST(TransformLaw, ImpulseTransformsFlatAndShiftIsAPhaseRamp) {
  // δ₀ → all-ones spectrum; δ_s → pure phase ramp exp(−2πiks/n). Together
  // these pin the transform's sign and normalization conventions, which a
  // round-trip test alone cannot (it passes under either sign).
  constexpr std::size_t kPad = 256;
  constexpr std::size_t kShift = 17;
  std::vector<double> impulse(kPad, 0.0);
  impulse[0] = 1.0;
  const auto flat = numerics::rfft(impulse);
  ASSERT_EQ(flat.size(), kPad / 2 + 1);
  for (const auto& bin : flat) {
    ASSERT_NEAR(bin.real(), 1.0, 1e-13);
    ASSERT_NEAR(bin.imag(), 0.0, 1e-13);
  }
  std::vector<double> shifted(kPad, 0.0);
  shifted[kShift] = 1.0;
  const auto ramp = numerics::rfft(shifted);
  for (std::size_t k = 0; k < ramp.size(); ++k) {
    const double angle = -2.0 * std::numbers::pi *
                         static_cast<double>(k * kShift) /
                         static_cast<double>(kPad);
    ASSERT_NEAR(ramp[k].real(), std::cos(angle), 1e-12) << "bin " << k;
    ASSERT_NEAR(ramp[k].imag(), std::sin(angle), 1e-12) << "bin " << k;
  }
}

TEST(TransformLaw, LinearityAndConvolutionTheorem) {
  // rfft(a+2b) == rfft(a)+2·rfft(b), and the pointwise product of spectra
  // inverts to the circular convolution — the identity the whole FFT
  // convolution path rests on, checked here on a tiny hand-computable case.
  const std::vector<double> a = {1.0, 2.0, 0.5, -1.0, 0.0, 0.0, 0.0, 0.0};
  const std::vector<double> b = {0.5, -0.25, 1.5, 0.75, 0.0, 0.0, 0.0, 0.0};
  const auto fa = numerics::rfft(a);
  const auto fb = numerics::rfft(b);
  std::vector<double> combo(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) combo[i] = a[i] + 2.0 * b[i];
  const auto fc = numerics::rfft(combo);
  for (std::size_t k = 0; k < fc.size(); ++k) {
    ASSERT_NEAR(std::abs(fc[k] - (fa[k] + 2.0 * fb[k])), 0.0, 1e-13);
  }
  std::vector<std::complex<double>> prod(fa.size());
  for (std::size_t k = 0; k < fa.size(); ++k) prod[k] = fa[k] * fb[k];
  const auto conv = numerics::irfft(prod, a.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    double expected = 0.0;  // circular convolution by definition
    for (std::size_t i = 0; i < a.size(); ++i) {
      expected += a[i] * b[(j + a.size() - i) % a.size()];
    }
    ASSERT_NEAR(conv[j], expected, 1e-13) << "cell " << j;
  }
}

// ---- law-level properties ---------------------------------------------------
// Distribution-interface contracts that every family — analytic, phase-type,
// lattice-backed or aged — must satisfy.

class LawProperty : public ::testing::TestWithParam<LawCase> {};

INSTANTIATE_TEST_SUITE_P(AllLaws, LawProperty,
                         ::testing::ValuesIn(laws()),
                         [](const ::testing::TestParamInfo<LawCase>& param) {
                           return param.param.label;
                         });

TEST_P(LawProperty, CdfIsMonotoneBoundedAndConsistentWithSurvival) {
  const auto& law = *GetParam().law;
  const double lo = law.lower_bound();
  const double hi = law.quantile(0.999);
  ASSERT_GT(hi, lo);
  double prev = -1.0;
  for (int i = 0; i <= 200; ++i) {
    const double t = lo + (hi - lo) * static_cast<double>(i) / 200.0;
    const double f = law.cdf(t);
    EXPECT_GE(f, 0.0) << "t=" << t;
    EXPECT_LE(f, 1.0) << "t=" << t;
    EXPECT_GE(f, prev - 1e-12) << "cdf not monotone at t=" << t;
    EXPECT_NEAR(f + law.sf(t), 1.0, 1e-9) << "t=" << t;
    EXPECT_GE(law.pdf(t), 0.0) << "t=" << t;
    prev = f;
  }
  // Support edges: no mass below the lower bound, all mass far out.
  EXPECT_NEAR(law.cdf(lo - 1e-9), 0.0, 1e-9);
  EXPECT_GT(law.cdf(law.quantile(0.9999) * 2.0 + 1.0), 0.999);
}

TEST_P(LawProperty, MeanMatchesIntegratedSurvival) {
  // E[X] = ∫₀^∞ S(u) du for nonnegative laws: ties the reported moment to
  // the reported survival function through independent quadrature.
  const auto& law = *GetParam().law;
  const auto integral = numerics::integrate_to_infinity(
      [&law](double u) { return law.sf(u); }, 0.0, 1e-10, 1e-9, 4000);
  EXPECT_NEAR(integral.value, law.mean(),
              GetParam().quad_tol * law.mean() + 10.0 * integral.error);
}

TEST_P(LawProperty, IntegralSfAgreesWithQuadrature) {
  // The analytic tail integral ∫_t^∞ S(u) du feeds the solver's heavy-tail
  // mean corrections; pin it to direct quadrature at a few interior points.
  const auto& law = *GetParam().law;
  for (const double p : {0.25, 0.5, 0.9}) {
    const double t = law.quantile(p);
    const auto integral = numerics::integrate_to_infinity(
        [&law](double u) { return law.sf(u); }, t, 1e-10, 1e-9, 4000);
    EXPECT_NEAR(integral.value, law.integral_sf(t),
                GetParam().quad_tol * law.mean() + 10.0 * integral.error)
        << "p=" << p;
  }
}

TEST_P(LawProperty, QuantileInvertsCdf) {
  const auto& law = *GetParam().law;
  for (const double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double q = law.quantile(p);
    EXPECT_NEAR(law.cdf(q), p, 1e-6) << "p=" << p;
  }
}

TEST_P(LawProperty, SamplesStayInSupportAndTrackTheMean) {
  const auto& law = *GetParam().law;
  random::Rng rng(20260805);  // fixed seed: the check is deterministic
  const int n = 10000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = law.sample(rng);
    ASSERT_GE(x, law.lower_bound() - 1e-9);
    ASSERT_LE(x, law.upper_bound() + 1e-9);
    sum += x;
  }
  const double variance = law.variance();
  if (std::isfinite(variance)) {
    // 6-sigma LLN band; deterministic under the fixed seed.
    const double band =
        6.0 * std::sqrt(variance / static_cast<double>(n)) + 1e-9;
    EXPECT_NEAR(sum / static_cast<double>(n), law.mean(), band);
  }
}

TEST_P(LawProperty, LatticeBridgeRoundTripAtRandomDraws) {
  // discretize() puts cumulative mass F((i+½)dt) in cells 0..i, so the
  // lattice CDF must reproduce the continuous CDF at cell midpoints to
  // floating accuracy — for every family, including numeric-cdf ones
  // (discretize consumes the law's own cdf). Probe at fixed-seed random
  // draws rather than a fixed comb so new families can't overfit the grid.
  const auto& law = *GetParam().law;
  constexpr double kDt = 0.005;
  constexpr std::size_t kN = 8192;
  const auto lattice = dist::discretize(law, kDt, kN);
  random::Rng rng(97);
  for (int draw = 0; draw < 64; ++draw) {
    const auto i =
        static_cast<std::size_t>(rng.next_double() * static_cast<double>(kN));
    const double midpoint = (static_cast<double>(i) + 0.5) * kDt;
    EXPECT_NEAR(lattice.cdf(i), law.cdf(midpoint), 1e-9)
        << "cell " << i;
  }
  // The explicit tail carries exactly the survival mass past the horizon.
  EXPECT_NEAR(lattice.tail(),
              law.sf((static_cast<double>(kN) - 0.5) * kDt), 1e-9);
}

// ---- solver-level properties ------------------------------------------------

class SolverProperty : public ::testing::TestWithParam<LawCase> {};

INSTANTIATE_TEST_SUITE_P(AllLaws, SolverProperty,
                         ::testing::ValuesIn(laws()),
                         [](const ::testing::TestParamInfo<LawCase>& param_info) {
                           return param_info.param.label;
                         });

core::DcsScenario scenario_with(const dist::DistPtr& service, int m1,
                                int m2) {
  std::vector<core::ServerSpec> servers = {{m1, service, nullptr},
                                           {m2, service, nullptr}};
  return core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(1.0),
      dist::Exponential::with_mean(0.2));
}

TEST_P(SolverProperty, MeanScalesWithWorkload) {
  // Adding work can never shrink the mean execution time.
  const auto s10 = scenario_with(GetParam().law, 10, 5);
  const auto s14 = scenario_with(GetParam().law, 14, 5);
  const core::ConvolutionSolver a, b;
  EXPECT_LE(a.mean_execution_time(
                core::apply_policy(s10, core::DtrPolicy(2))),
            b.mean_execution_time(
                core::apply_policy(s14, core::DtrPolicy(2))) +
                1e-6);
}

TEST_P(SolverProperty, SymmetricPolicyInvariance) {
  // Mirroring a policy across identical servers mirrors nothing: the
  // metric is invariant under swapping the (equal) servers and the policy.
  const auto s = scenario_with(GetParam().law, 12, 12);
  const core::ConvolutionSolver solver;
  const double forward = solver.mean_execution_time(
      core::apply_policy(s, policy::make_two_server_policy(4, 1)));
  const double mirrored = solver.mean_execution_time(
      core::apply_policy(s, policy::make_two_server_policy(1, 4)));
  EXPECT_NEAR(forward, mirrored, 1e-9 * (1.0 + forward));
}

TEST_P(SolverProperty, QosDominatedByWorkloadOrdering) {
  // More work ⇒ pointwise smaller completion CDF ⇒ smaller QoS.
  const auto light = scenario_with(GetParam().law, 8, 4);
  const auto heavy = scenario_with(GetParam().law, 12, 4);
  const core::ConvolutionSolver a, b;
  const auto wl = core::apply_policy(light, core::DtrPolicy(2));
  const auto wh = core::apply_policy(heavy, core::DtrPolicy(2));
  for (double t : {10.0, 25.0, 50.0}) {
    EXPECT_GE(a.qos(wl, t) + 1e-9, b.qos(wh, t)) << "t=" << t;
  }
}

TEST_P(SolverProperty, ReliabilityImprovesWithSlowerFailures) {
  auto fragile = scenario_with(GetParam().law, 10, 5);
  auto robust = fragile;
  fragile.servers[0].failure = dist::Exponential::with_mean(30.0);
  fragile.servers[1].failure = dist::Exponential::with_mean(30.0);
  robust.servers[0].failure = dist::Exponential::with_mean(300.0);
  robust.servers[1].failure = dist::Exponential::with_mean(300.0);
  const core::ConvolutionSolver a, b;
  EXPECT_LT(a.reliability(core::apply_policy(fragile, core::DtrPolicy(2))),
            b.reliability(core::apply_policy(robust, core::DtrPolicy(2))));
}

TEST_P(SolverProperty, ExecutionTimeLawQuantilesMonotone) {
  const auto s = scenario_with(GetParam().law, 10, 5);
  const core::ConvolutionSolver solver;
  const auto law =
      solver.execution_time_law(core::apply_policy(s, core::DtrPolicy(2)));
  double prev = 0.0;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double q = law.quantile(p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

}  // namespace
}  // namespace agedtr
