// Parameterized property sweeps across distribution families: lattice
// conservation laws, solver monotonicity/invariance properties, and
// policy-metric sanity relations that must hold for *every* law.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/core/convolution.hpp"
#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/gamma.hpp"
#include "agedtr/dist/pareto.hpp"
#include "agedtr/dist/uniform.hpp"
#include "agedtr/dist/lattice_bridge.hpp"
#include "agedtr/dist/weibull.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr {
namespace {

struct LawCase {
  std::string label;
  dist::DistPtr law;
};

std::vector<LawCase> laws() {
  return {
      {"exponential", dist::Exponential::with_mean(1.5)},
      {"pareto_heavy", dist::Pareto::with_mean(1.5, 1.5)},
      {"pareto_light", dist::Pareto::with_mean(1.5, 3.5)},
      {"uniform", dist::Uniform::with_mean(1.5)},
      {"shifted_exponential", dist::ShiftedExponential::with_mean(1.5)},
      {"gamma", std::make_shared<dist::Gamma>(2.0, 0.75)},
      {"weibull", dist::Weibull::with_mean(1.5, 1.7)},
  };
}

class LatticeProperty : public ::testing::TestWithParam<LawCase> {
 protected:
  static constexpr double kDt = 0.005;
  static constexpr std::size_t kN = 8192;
};

INSTANTIATE_TEST_SUITE_P(AllLaws, LatticeProperty,
                         ::testing::ValuesIn(laws()),
                         [](const ::testing::TestParamInfo<LawCase>& info) {
                           return info.param.label;
                         });

TEST_P(LatticeProperty, MassConservedThroughConvolutionChains) {
  const auto d = dist::discretize(*GetParam().law, kDt, kN);
  EXPECT_NEAR(d.total(), 1.0, 1e-9);
  EXPECT_NEAR(d.convolve(d).total(), 1.0, 1e-8);
  EXPECT_NEAR(d.convolve_power(5).total(), 1.0, 1e-8);
}

TEST_P(LatticeProperty, GridMeanTracksDistributionMean) {
  const auto d = dist::discretize(*GetParam().law, kDt, kN);
  const double horizon = kDt * static_cast<double>(kN);
  // grid mean + tail-adjusted remainder brackets the true mean.
  const double lower = d.grid_mean();
  const double upper = lower + d.tail() * horizon +
                       GetParam().law->integral_sf(horizon);
  EXPECT_LE(lower, GetParam().law->mean() + 0.02);
  EXPECT_GE(upper + 0.05 * GetParam().law->mean(), GetParam().law->mean());
}

TEST_P(LatticeProperty, ConvolutionCommutes) {
  const auto a = dist::discretize(*GetParam().law, kDt, kN);
  const auto b =
      dist::discretize(dist::Exponential(1.0), kDt, kN);
  const auto ab = a.convolve(b);
  const auto ba = b.convolve(a);
  for (std::size_t i = 0; i < kN; i += 97) {
    EXPECT_NEAR(ab.mass(i), ba.mass(i), 1e-12);
  }
  EXPECT_NEAR(ab.tail(), ba.tail(), 1e-12);
}

TEST_P(LatticeProperty, MaxOfIsCommutativeAndDominates) {
  const auto a = dist::discretize(*GetParam().law, kDt, kN);
  const auto b = dist::discretize(dist::Uniform(0.0, 2.0), kDt, kN);
  const auto m1 = numerics::LatticeDensity::max_of(a, b);
  const auto m2 = numerics::LatticeDensity::max_of(b, a);
  for (std::size_t i = 0; i < kN; i += 131) {
    EXPECT_NEAR(m1.mass(i), m2.mass(i), 1e-12);
    // F_max <= min(F_a, F_b): the max is stochastically larger than both.
    EXPECT_LE(m1.cdf(i), a.cdf(i) + 1e-12);
    EXPECT_LE(m1.cdf(i), b.cdf(i) + 1e-12);
  }
}

TEST_P(LatticeProperty, MaxWithZeroIsIdentity) {
  const auto a = dist::discretize(*GetParam().law, kDt, kN);
  const auto z = numerics::LatticeDensity::zero(kDt, kN);
  const auto m = numerics::LatticeDensity::max_of(a, z);
  for (std::size_t i = 0; i < kN; i += 61) {
    EXPECT_NEAR(m.cdf(i), a.cdf(i), 1e-12);
  }
}

// ---- solver-level properties ------------------------------------------------

class SolverProperty : public ::testing::TestWithParam<LawCase> {};

INSTANTIATE_TEST_SUITE_P(AllLaws, SolverProperty,
                         ::testing::ValuesIn(laws()),
                         [](const ::testing::TestParamInfo<LawCase>& info) {
                           return info.param.label;
                         });

core::DcsScenario scenario_with(const dist::DistPtr& service, int m1,
                                int m2) {
  std::vector<core::ServerSpec> servers = {{m1, service, nullptr},
                                           {m2, service, nullptr}};
  return core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(1.0),
      dist::Exponential::with_mean(0.2));
}

TEST_P(SolverProperty, MeanScalesWithWorkload) {
  // Adding work can never shrink the mean execution time.
  const auto s10 = scenario_with(GetParam().law, 10, 5);
  const auto s14 = scenario_with(GetParam().law, 14, 5);
  const core::ConvolutionSolver a, b;
  EXPECT_LE(a.mean_execution_time(
                core::apply_policy(s10, core::DtrPolicy(2))),
            b.mean_execution_time(
                core::apply_policy(s14, core::DtrPolicy(2))) +
                1e-6);
}

TEST_P(SolverProperty, SymmetricPolicyInvariance) {
  // Mirroring a policy across identical servers mirrors nothing: the
  // metric is invariant under swapping the (equal) servers and the policy.
  const auto s = scenario_with(GetParam().law, 12, 12);
  const core::ConvolutionSolver solver;
  const double forward = solver.mean_execution_time(
      core::apply_policy(s, policy::make_two_server_policy(4, 1)));
  const double mirrored = solver.mean_execution_time(
      core::apply_policy(s, policy::make_two_server_policy(1, 4)));
  EXPECT_NEAR(forward, mirrored, 1e-9 * (1.0 + forward));
}

TEST_P(SolverProperty, QosDominatedByWorkloadOrdering) {
  // More work ⇒ pointwise smaller completion CDF ⇒ smaller QoS.
  const auto light = scenario_with(GetParam().law, 8, 4);
  const auto heavy = scenario_with(GetParam().law, 12, 4);
  const core::ConvolutionSolver a, b;
  const auto wl = core::apply_policy(light, core::DtrPolicy(2));
  const auto wh = core::apply_policy(heavy, core::DtrPolicy(2));
  for (double t : {10.0, 25.0, 50.0}) {
    EXPECT_GE(a.qos(wl, t) + 1e-9, b.qos(wh, t)) << "t=" << t;
  }
}

TEST_P(SolverProperty, ReliabilityImprovesWithSlowerFailures) {
  auto fragile = scenario_with(GetParam().law, 10, 5);
  auto robust = fragile;
  fragile.servers[0].failure = dist::Exponential::with_mean(30.0);
  fragile.servers[1].failure = dist::Exponential::with_mean(30.0);
  robust.servers[0].failure = dist::Exponential::with_mean(300.0);
  robust.servers[1].failure = dist::Exponential::with_mean(300.0);
  const core::ConvolutionSolver a, b;
  EXPECT_LT(a.reliability(core::apply_policy(fragile, core::DtrPolicy(2))),
            b.reliability(core::apply_policy(robust, core::DtrPolicy(2))));
}

TEST_P(SolverProperty, ExecutionTimeLawQuantilesMonotone) {
  const auto s = scenario_with(GetParam().law, 10, 5);
  const core::ConvolutionSolver solver;
  const auto law =
      solver.execution_time_law(core::apply_policy(s, core::DtrPolicy(2)));
  double prev = 0.0;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double q = law.quantile(p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

}  // namespace
}  // namespace agedtr
