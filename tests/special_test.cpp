// Special functions against closed-form reference values.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/numerics/special.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::numerics {
namespace {

TEST(LogGamma, IntegerFactorials) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-13);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-13);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(log_gamma(11.0), std::log(3628800.0), 1e-11);
}

TEST(LogGamma, HalfInteger) {
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-12);
  EXPECT_NEAR(log_gamma(1.5), std::log(0.5 * std::sqrt(M_PI)), 1e-12);
}

TEST(LogGamma, ReflectionBranch) {
  // Γ(0.25)·Γ(0.75) = π/sin(π/4).
  const double sum = log_gamma(0.25) + log_gamma(0.75);
  EXPECT_NEAR(sum, std::log(M_PI / std::sin(M_PI * 0.25)), 1e-12);
}

TEST(LogGamma, RejectsNonPositive) {
  EXPECT_THROW(static_cast<void>(log_gamma(0.0)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(log_gamma(-1.0)), InvalidArgument);
}

TEST(IncompleteGamma, ExponentialSpecialCase) {
  // P(1, x) = 1 − e^{−x}.
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12) << "x=" << x;
  }
}

TEST(IncompleteGamma, ErfSpecialCase) {
  // P(1/2, x) = erf(√x).
  for (double x : {0.2, 1.0, 4.0}) {
    EXPECT_NEAR(gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-12) << "x=" << x;
  }
}

TEST(IncompleteGamma, ComplementsSumToOne) {
  for (double a : {0.3, 1.0, 2.5, 10.0, 100.0}) {
    for (double x : {0.01, 0.5, 2.0, 50.0, 200.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(IncompleteGamma, BoundaryValues) {
  EXPECT_DOUBLE_EQ(gamma_p(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_q(2.0, 0.0), 1.0);
  EXPECT_NEAR(gamma_p(2.0, 1e4), 1.0, 1e-14);
}

TEST(IncompleteGammaInverse, RoundTrip) {
  for (double a : {0.5, 1.0, 2.5, 17.0}) {
    for (double p : {0.01, 0.25, 0.5, 0.9, 0.999}) {
      const double x = gamma_p_inv(a, p);
      EXPECT_NEAR(gamma_p(a, x), p, 1e-9) << "a=" << a << " p=" << p;
    }
  }
}

TEST(IncompleteGammaInverse, ZeroAtZero) {
  EXPECT_DOUBLE_EQ(gamma_p_inv(3.0, 0.0), 0.0);
}

TEST(Digamma, ReferenceValues) {
  constexpr double kEulerMascheroni = 0.57721566490153286;
  EXPECT_NEAR(digamma(1.0), -kEulerMascheroni, 1e-11);
  // ψ(2) = 1 − γ.
  EXPECT_NEAR(digamma(2.0), 1.0 - kEulerMascheroni, 1e-11);
  // ψ(1/2) = −γ − 2 ln 2.
  EXPECT_NEAR(digamma(0.5), -kEulerMascheroni - 2.0 * std::log(2.0), 1e-11);
}

TEST(Digamma, RecurrenceHolds) {
  // ψ(x+1) = ψ(x) + 1/x.
  for (double x : {0.3, 1.7, 8.0}) {
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-11);
  }
}

TEST(Trigamma, ReferenceValues) {
  EXPECT_NEAR(trigamma(1.0), M_PI * M_PI / 6.0, 1e-10);
  // ψ′(1/2) = π²/2.
  EXPECT_NEAR(trigamma(0.5), M_PI * M_PI / 2.0, 1e-10);
}

TEST(Trigamma, RecurrenceHolds) {
  for (double x : {0.4, 2.2, 9.0}) {
    EXPECT_NEAR(trigamma(x + 1.0), trigamma(x) - 1.0 / (x * x), 1e-10);
  }
}

TEST(NormalCdf, SymmetryAndReference) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.0) + normal_cdf(1.0), 1.0, 1e-14);
}

TEST(NormalQuantile, RoundTrip) {
  for (double p : {1e-6, 0.025, 0.5, 0.8413447460685429, 0.999999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12) << "p=" << p;
  }
}

TEST(NormalQuantile, ReferenceValues) {
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-9);
}

TEST(NormalQuantile, RejectsBoundary) {
  EXPECT_THROW(static_cast<void>(normal_quantile(0.0)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(normal_quantile(1.0)), InvalidArgument);
}

}  // namespace
}  // namespace agedtr::numerics
