// Quadrature kernels: fixed Gauss rules, adaptive GK15, semi-infinite maps.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/numerics/quadrature.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::numerics {
namespace {

TEST(GaussRule, WeightsSumToTwo) {
  for (int n : {2, 4, 8, 16, 32, 64}) {
    const GaussRule& rule = gauss_rule(n);
    double sum = 0.0;
    for (double w : rule.weights) sum += w;
    EXPECT_NEAR(sum, 2.0, 1e-13) << "n=" << n;
  }
}

TEST(GaussRule, NodesSymmetricAndSorted) {
  const GaussRule& rule = gauss_rule(16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_NEAR(rule.nodes[i], -rule.nodes[15 - i], 1e-14);
    if (i > 0) {
      EXPECT_GT(rule.nodes[i], rule.nodes[i - 1]);
    }
  }
}

TEST(GaussLegendre, ExactForPolynomials) {
  // n-point Gauss integrates degree 2n−1 exactly: x^7 over [0, 1] with n=4.
  const double val =
      gauss_legendre([](double x) { return std::pow(x, 7.0); }, 0.0, 1.0, 4);
  EXPECT_NEAR(val, 1.0 / 8.0, 1e-14);
}

TEST(GaussLegendre, SmoothTranscendental) {
  const double val =
      gauss_legendre([](double x) { return std::exp(x); }, 0.0, 1.0, 16);
  EXPECT_NEAR(val, std::exp(1.0) - 1.0, 1e-14);
}

TEST(AdaptiveIntegrate, SmoothFunction) {
  const auto r = integrate([](double x) { return std::sin(x); }, 0.0, M_PI);
  EXPECT_NEAR(r.value, 2.0, 1e-12);
  EXPECT_LT(r.error, 1e-8);
}

TEST(AdaptiveIntegrate, HandlesKink) {
  const auto r =
      integrate([](double x) { return std::fabs(x - 0.3); }, 0.0, 1.0, 1e-12,
                1e-10);
  EXPECT_NEAR(r.value, 0.3 * 0.3 / 2.0 + 0.7 * 0.7 / 2.0, 1e-10);
}

TEST(AdaptiveIntegrate, NarrowSpike) {
  // Gaussian spike of width 1e-3 inside [0, 1].
  const double s = 1e-3;
  const auto r = integrate(
      [s](double x) {
        const double z = (x - 0.5) / s;
        return std::exp(-0.5 * z * z) / (s * std::sqrt(2.0 * M_PI));
      },
      0.0, 1.0, 1e-12, 1e-10, 5000);
  EXPECT_NEAR(r.value, 1.0, 1e-8);
}

TEST(AdaptiveIntegrate, ReversedBoundsNegate) {
  const auto fwd = integrate([](double x) { return x * x; }, 0.0, 2.0);
  const auto rev = integrate([](double x) { return x * x; }, 2.0, 0.0);
  EXPECT_NEAR(fwd.value, -rev.value, 1e-12);
}

TEST(AdaptiveIntegrate, EmptyInterval) {
  const auto r = integrate([](double) { return 1.0; }, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(AdaptiveIntegrate, RejectsNonFinite) {
  EXPECT_THROW(static_cast<void>(integrate([](double) { return 0.0; }, 0.0,
                         std::numeric_limits<double>::infinity())),
               InvalidArgument);
}

TEST(IntegrateToInfinity, ExponentialTail) {
  const auto r =
      integrate_to_infinity([](double x) { return std::exp(-x); }, 0.0);
  EXPECT_NEAR(r.value, 1.0, 1e-10);
}

TEST(IntegrateToInfinity, ShiftedStart) {
  const auto r =
      integrate_to_infinity([](double x) { return std::exp(-x); }, 2.0);
  EXPECT_NEAR(r.value, std::exp(-2.0), 1e-10);
}

TEST(IntegrateToInfinity, PowerLawTail) {
  // ∫_1^∞ x^{−2.5} dx = 1/1.5.
  const auto r = integrate_to_infinity(
      [](double x) { return std::pow(x, -2.5); }, 1.0, 1e-12, 1e-10, 4000);
  EXPECT_NEAR(r.value, 1.0 / 1.5, 1e-8);
}

TEST(IntegrateToInfinity, GammaDensityNormalizes) {
  // Gamma(3, 2) density integrates to 1.
  const auto r = integrate_to_infinity(
      [](double x) { return x * x * std::exp(-x / 2.0) / 16.0; }, 0.0);
  EXPECT_NEAR(r.value, 1.0, 1e-9);
}

}  // namespace
}  // namespace agedtr::numerics
