// Golden regression tests: a miniature Fig. 1 / Table I grid — a scaled-down
// two-server system on a coarse lattice — evaluated with the
// ConvolutionSolver and compared against checked-in CSVs. The goldens pin
// the numerical outputs of the full stack (model builders → discretization
// → k-fold sums → solver metrics): an unintended change anywhere in that
// chain shows up as a drift here before it shows up in a paper figure.
//
// Regenerating: build, then run this binary with AGEDTR_REGEN_GOLDEN=1 —
// the CSVs under AGEDTR_GOLDEN_DIR are rewritten from the current code and
// the tests pass trivially. Commit regenerated goldens only with a
// justification for the numerical change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/scenario.hpp"
#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/policy_comparer.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/sim/replication_study.hpp"
#include "agedtr/util/thread_pool.hpp"

#ifndef AGEDTR_GOLDEN_DIR
#error "tests/CMakeLists.txt must define AGEDTR_GOLDEN_DIR"
#endif

namespace agedtr {
namespace {

using core::DcsScenario;
using core::ServerSpec;
using dist::ModelFamily;

/// Miniature two-server system in the image of the paper's Section III-A1
/// setup (same structure and delay-regime rules, 1/5 of the task load) so
/// the grid evaluates in milliseconds on a coarse lattice.
DcsScenario mini_two_server(ModelFamily family, bool severe, bool failures) {
  std::vector<ServerSpec> servers = {
      {20, dist::make_model_distribution(family, 2.0),
       failures ? dist::Exponential::with_mean(200.0) : nullptr},
      {10, dist::make_model_distribution(family, 1.0),
       failures ? dist::Exponential::with_mean(100.0) : nullptr}};
  DcsScenario scenario = core::make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(family, severe ? 9.0 : 1.0),
      dist::Exponential::with_mean(severe ? 1.0 : 0.2));
  scenario.transfer_scaling = core::TransferScaling::kPerTask;
  return scenario;
}

core::ConvolutionSolver coarse_solver() {
  core::ConvolutionOptions options;
  options.cells = 4096;  // coarse: golden values bake in this lattice
  return core::ConvolutionSolver(options);
}

const std::vector<ModelFamily>& golden_families() {
  static const std::vector<ModelFamily> families = {
      ModelFamily::kExponential, ModelFamily::kPareto1,
      ModelFamily::kUniform};
  return families;
}

constexpr int kL12Values[] = {0, 4, 8, 12, 16, 20};

struct GoldenRow {
  std::string family;
  std::string delay;
  int l12 = 0;
  double value = 0.0;
};

std::string golden_path(const std::string& name) {
  return std::string(AGEDTR_GOLDEN_DIR) + "/" + name;
}

bool regen_requested() {
  const char* env = std::getenv("AGEDTR_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void write_golden(const std::string& name,
                  const std::vector<GoldenRow>& rows) {
  std::ofstream out(golden_path(name));
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
  out << "family,delay,l12,value\n";
  for (const GoldenRow& r : rows) {
    char value[32];
    std::snprintf(value, sizeof(value), "%.12g", r.value);
    out << r.family << "," << r.delay << "," << r.l12 << "," << value
        << "\n";
  }
}

std::vector<GoldenRow> read_golden(const std::string& name) {
  std::ifstream in(golden_path(name));
  EXPECT_TRUE(in.good())
      << "missing golden " << golden_path(name)
      << " (regenerate with AGEDTR_REGEN_GOLDEN=1)";
  std::vector<GoldenRow> rows;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    GoldenRow row;
    std::string l12;
    std::string value;
    std::getline(fields, row.family, ',');
    std::getline(fields, row.delay, ',');
    std::getline(fields, l12, ',');
    std::getline(fields, value, ',');
    row.l12 = std::stoi(l12);
    row.value = std::stod(value);
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Computes the grid, then either rewrites the golden (regen mode) or
/// compares row-by-row within `rtol`.
void run_golden_case(const std::string& name, bool failures,
                     const std::function<double(
                         const core::ConvolutionSolver&,
                         const std::vector<core::ServerWorkload>&)>& metric,
                     double rtol) {
  std::vector<GoldenRow> rows;
  for (const ModelFamily family : golden_families()) {
    for (const bool severe : {false, true}) {
      const DcsScenario scenario = mini_two_server(family, severe, failures);
      const core::ConvolutionSolver solver = coarse_solver();
      for (const int l12 : kL12Values) {
        GoldenRow row;
        row.family = dist::model_family_name(family);
        row.delay = severe ? "severe" : "low";
        row.l12 = l12;
        row.value = metric(
            solver, core::apply_policy(
                        scenario, policy::make_two_server_policy(l12, 0)));
        rows.push_back(std::move(row));
      }
    }
  }
  if (regen_requested()) {
    write_golden(name, rows);
    return;
  }
  const std::vector<GoldenRow> golden = read_golden(name);
  ASSERT_EQ(golden.size(), rows.size())
      << name << ": grid shape changed; regenerate the golden";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    SCOPED_TRACE(name + ": " + rows[i].family + "/" + rows[i].delay +
                 " L12=" + std::to_string(rows[i].l12));
    EXPECT_EQ(rows[i].family, golden[i].family);
    EXPECT_EQ(rows[i].delay, golden[i].delay);
    EXPECT_EQ(rows[i].l12, golden[i].l12);
    const double scale = std::max(std::abs(golden[i].value), 1e-12);
    EXPECT_NEAR(rows[i].value, golden[i].value, rtol * scale);
  }
}

TEST(Golden, MiniFig1MeanExecutionTime) {
  // Fig. 1 analogue: T̄(L12) per family and delay regime, reliable servers.
  run_golden_case("fig1_mini_mean.csv", /*failures=*/false,
                  [](const core::ConvolutionSolver& solver,
                     const std::vector<core::ServerWorkload>& workloads) {
                    return solver.mean_execution_time(workloads);
                  },
                  /*rtol=*/1e-9);
}

TEST(Golden, MiniTable1Reliability) {
  // Table I analogue: R(L12) with exponential failures.
  run_golden_case("table1_mini_reliability.csv", /*failures=*/true,
                  [](const core::ConvolutionSolver& solver,
                     const std::vector<core::ServerWorkload>& workloads) {
                    return solver.reliability(workloads);
                  },
                  /*rtol=*/1e-9);
}

TEST(Golden, MiniQos) {
  // QoS at a mid-range deadline exercises the truncated-CDF path.
  run_golden_case("qos_mini.csv", /*failures=*/true,
                  [](const core::ConvolutionSolver& solver,
                     const std::vector<core::ServerWorkload>& workloads) {
                    return solver.qos(workloads, 60.0);
                  },
                  /*rtol=*/1e-9);
}

// --- Replication tradeoff golden. ----------------------------------------
//
// The (factor × slowdown-intensity) grid from sim::run_replication_study on
// the mini two-server system. Deterministic: the study uses counter-based
// per-replication streams, so the Monte-Carlo columns are scheduling- and
// pool-independent and pin at full double precision like the analytic ones.

struct TradeoffRow {
  int factor = 0;
  double intensity = 0.0;
  double mc_mean = 0.0;
  double mc_qos = 0.0;
  double bound_lower = 0.0;
  double bound_upper = 0.0;
};

std::vector<TradeoffRow> compute_tradeoff_rows() {
  const DcsScenario scenario =
      mini_two_server(ModelFamily::kExponential, /*severe=*/false,
                      /*failures=*/false);
  sim::ReplicationStudyOptions options;
  options.factors = {1, 2};
  options.slowdown_intensities = {0.0, 1.0, 3.0};
  options.base_slowdown.rate = 0.03;
  options.base_slowdown.duration = dist::Exponential::with_mean(25.0);
  options.base_slowdown.factor = 0.1;
  options.replications = 1'200;
  options.seed = 0x5eed;
  options.deadline = 60.0;
  const std::vector<sim::ReplicationStudyRow> rows =
      sim::run_replication_study(
          scenario, policy::make_two_server_policy(4, 0), options);
  std::vector<TradeoffRow> out;
  for (const sim::ReplicationStudyRow& row : rows) {
    out.push_back({row.factor, row.intensity, row.mc_mean, row.mc_qos,
                   row.bound_lower, row.bound_upper});
  }
  return out;
}

void write_tradeoff_golden(const std::string& name,
                           const std::vector<TradeoffRow>& rows) {
  std::ofstream out(golden_path(name));
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
  out << "factor,intensity,mc_mean,mc_qos,bound_lower,bound_upper\n";
  for (const TradeoffRow& r : rows) {
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer), "%d,%.12g,%.12g,%.12g,%.12g,%.12g",
                  r.factor, r.intensity, r.mc_mean, r.mc_qos, r.bound_lower,
                  r.bound_upper);
    out << buffer << "\n";
  }
}

std::vector<TradeoffRow> read_tradeoff_golden(const std::string& name) {
  std::ifstream in(golden_path(name));
  EXPECT_TRUE(in.good())
      << "missing golden " << golden_path(name)
      << " (regenerate with AGEDTR_REGEN_GOLDEN=1)";
  std::vector<TradeoffRow> rows;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string token;
    std::vector<std::string> tokens;
    while (std::getline(fields, token, ',')) tokens.push_back(token);
    EXPECT_EQ(tokens.size(), 6u) << name << ": malformed row: " << line;
    if (tokens.size() != 6u) continue;
    TradeoffRow row;
    row.factor = std::stoi(tokens[0]);
    row.intensity = std::stod(tokens[1]);
    row.mc_mean = std::stod(tokens[2]);
    row.mc_qos = std::stod(tokens[3]);
    row.bound_lower = std::stod(tokens[4]);
    row.bound_upper = std::stod(tokens[5]);
    rows.push_back(row);
  }
  return rows;
}

TEST(Golden, ReplicationTradeoff) {
  const std::string name = "replication_tradeoff.csv";
  const std::vector<TradeoffRow> rows = compute_tradeoff_rows();

  // Acceptance invariant, checked on the freshly computed grid so it holds
  // in regen mode too: the analytic bounds bracket the Monte-Carlo mean up
  // to sampling noise on every golden cell.
  for (const TradeoffRow& row : rows) {
    SCOPED_TRACE("r=" + std::to_string(row.factor) +
                 " intensity=" + std::to_string(row.intensity));
    const double slack = 0.05 * std::max(row.mc_mean, 1.0);
    EXPECT_GE(row.mc_mean, row.bound_lower - slack);
    EXPECT_LE(row.mc_mean, row.bound_upper + slack);
    EXPECT_GE(row.mc_qos, 0.0);
    EXPECT_LE(row.mc_qos, 1.0);
  }

  if (regen_requested()) {
    write_tradeoff_golden(name, rows);
    return;
  }
  const std::vector<TradeoffRow> golden = read_tradeoff_golden(name);
  ASSERT_EQ(golden.size(), rows.size())
      << name << ": grid shape changed; regenerate the golden";
  constexpr double kRtol = 1e-9;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    SCOPED_TRACE(name + ": r=" + std::to_string(rows[i].factor) +
                 " intensity=" + std::to_string(rows[i].intensity));
    EXPECT_EQ(rows[i].factor, golden[i].factor);
    EXPECT_DOUBLE_EQ(rows[i].intensity, golden[i].intensity);
    const auto check = [&](double fresh, double pinned) {
      const double scale = std::max(std::abs(pinned), 1e-12);
      EXPECT_NEAR(fresh, pinned, kRtol * scale);
    };
    check(rows[i].mc_mean, golden[i].mc_mean);
    check(rows[i].mc_qos, golden[i].mc_qos);
    check(rows[i].bound_lower, golden[i].bound_lower);
    check(rows[i].bound_upper, golden[i].bound_upper);
  }
}

// --- Comparer rankings golden. --------------------------------------------
//
// The PolicyComparer demo grid (the same one `policy_comparer_bench --smoke`
// runs and pins against tests/golden/comparer_rankings.csv) recomputed here
// through the library API. CRN trajectory sub-streams are counter-derived,
// so every column pins at full double precision regardless of the thread
// pool; regen mode rewrites the same CSV the bench checks, keeping the two
// gates on one artifact.

std::vector<std::vector<std::string>> read_csv_rows(const std::string& name) {
  std::ifstream in(golden_path(name));
  EXPECT_TRUE(in.good())
      << "missing golden " << golden_path(name)
      << " (regenerate with AGEDTR_REGEN_GOLDEN=1)";
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::vector<std::string> tokens;
    std::string token;
    while (std::getline(fields, token, ',')) tokens.push_back(token);
    rows.push_back(std::move(tokens));
  }
  return rows;
}

TEST(Golden, ComparerRankings) {
  const std::string name = "comparer_rankings.csv";
  policy::ComparerDemoGrid grid = policy::make_comparer_demo_grid();
  grid.options.pool = &ThreadPool::global();  // results are pool-independent
  const std::vector<policy::PolicyAssessment> assessments =
      policy::PolicyComparer(grid.scenarios, grid.policies, grid.options)
          .compare();

  // Acceptance invariants on the fresh grid (hold in regen mode too): every
  // scenario ranks all four policy families 1..4.
  std::size_t cells_per_scenario = grid.policies.size();
  ASSERT_EQ(assessments.size(),
            grid.scenarios.size() * cells_per_scenario);
  for (std::size_t s = 0; s < grid.scenarios.size(); ++s) {
    std::vector<int> ranks;
    for (std::size_t p = 0; p < cells_per_scenario; ++p) {
      ranks.push_back(assessments[s * cells_per_scenario + p].rank);
    }
    std::sort(ranks.begin(), ranks.end());
    for (std::size_t r = 0; r < ranks.size(); ++r) {
      EXPECT_EQ(ranks[r], static_cast<int>(r) + 1)
          << "scenario " << grid.scenarios[s].name;
    }
  }

  if (regen_requested()) {
    policy::PolicyComparer::write_csv(assessments, golden_path(name));
    return;
  }
  const std::vector<std::vector<std::string>> golden = read_csv_rows(name);
  std::ostringstream fresh_csv;
  policy::PolicyComparer::to_table(assessments).write_csv(fresh_csv);
  std::istringstream fresh_in(fresh_csv.str());
  std::vector<std::vector<std::string>> fresh;
  {
    std::string line;
    while (std::getline(fresh_in, line)) {
      if (line.empty()) continue;
      std::istringstream fields(line);
      std::vector<std::string> tokens;
      std::string token;
      while (std::getline(fields, token, ',')) tokens.push_back(token);
      fresh.push_back(std::move(tokens));
    }
  }
  ASSERT_EQ(golden.size(), fresh.size())
      << name << ": grid shape changed; regenerate the golden";
  constexpr double kRtol = 1e-9;
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    ASSERT_EQ(golden[i].size(), fresh[i].size()) << name << " row " << i;
    for (std::size_t c = 0; c < fresh[i].size(); ++c) {
      SCOPED_TRACE(name + " row " + std::to_string(i) + " col " +
                   std::to_string(c));
      char* fresh_end = nullptr;
      char* golden_end = nullptr;
      const double f = std::strtod(fresh[i][c].c_str(), &fresh_end);
      const double g = std::strtod(golden[i][c].c_str(), &golden_end);
      const bool fresh_numeric =
          fresh_end != fresh[i][c].c_str() && *fresh_end == '\0';
      const bool golden_numeric =
          golden_end != golden[i][c].c_str() && *golden_end == '\0';
      if (fresh_numeric && golden_numeric) {
        const double scale = std::max(std::abs(g), 1e-12);
        EXPECT_NEAR(f, g, kRtol * scale);
      } else {
        EXPECT_EQ(fresh[i][c], golden[i][c]);
      }
    }
  }
}

/// Structural sanity on top of the numeric pins: the mean sweep must be
/// finite and positive, and reliability must stay in (0, 1]. Runs on the
/// freshly computed values, so it holds in regen mode too.
TEST(Golden, GoldenValuesAreWellFormed) {
  for (const char* name :
       {"fig1_mini_mean.csv", "table1_mini_reliability.csv",
        "qos_mini.csv"}) {
    if (regen_requested()) continue;  // previous tests just rewrote them
    const std::vector<GoldenRow> rows = read_golden(name);
    EXPECT_EQ(rows.size(), golden_families().size() * 2 *
                               std::size(kL12Values))
        << name;
    for (const GoldenRow& r : rows) {
      EXPECT_TRUE(std::isfinite(r.value)) << name;
      EXPECT_GT(r.value, 0.0) << name;
      if (name != std::string("fig1_mini_mean.csv")) {
        EXPECT_LE(r.value, 1.0) << name;
      }
    }
  }
}

}  // namespace
}  // namespace agedtr
