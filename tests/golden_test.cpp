// Golden regression tests: a miniature Fig. 1 / Table I grid — a scaled-down
// two-server system on a coarse lattice — evaluated with the
// ConvolutionSolver and compared against checked-in CSVs. The goldens pin
// the numerical outputs of the full stack (model builders → discretization
// → k-fold sums → solver metrics): an unintended change anywhere in that
// chain shows up as a drift here before it shows up in a paper figure.
//
// Regenerating: build, then run this binary with AGEDTR_REGEN_GOLDEN=1 —
// the CSVs under AGEDTR_GOLDEN_DIR are rewritten from the current code and
// the tests pass trivially. Commit regenerated goldens only with a
// justification for the numerical change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/scenario.hpp"
#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/two_server.hpp"

#ifndef AGEDTR_GOLDEN_DIR
#error "tests/CMakeLists.txt must define AGEDTR_GOLDEN_DIR"
#endif

namespace agedtr {
namespace {

using core::DcsScenario;
using core::ServerSpec;
using dist::ModelFamily;

/// Miniature two-server system in the image of the paper's Section III-A1
/// setup (same structure and delay-regime rules, 1/5 of the task load) so
/// the grid evaluates in milliseconds on a coarse lattice.
DcsScenario mini_two_server(ModelFamily family, bool severe, bool failures) {
  std::vector<ServerSpec> servers = {
      {20, dist::make_model_distribution(family, 2.0),
       failures ? dist::Exponential::with_mean(200.0) : nullptr},
      {10, dist::make_model_distribution(family, 1.0),
       failures ? dist::Exponential::with_mean(100.0) : nullptr}};
  DcsScenario scenario = core::make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(family, severe ? 9.0 : 1.0),
      dist::Exponential::with_mean(severe ? 1.0 : 0.2));
  scenario.transfer_scaling = core::TransferScaling::kPerTask;
  return scenario;
}

core::ConvolutionSolver coarse_solver() {
  core::ConvolutionOptions options;
  options.cells = 4096;  // coarse: golden values bake in this lattice
  return core::ConvolutionSolver(options);
}

const std::vector<ModelFamily>& golden_families() {
  static const std::vector<ModelFamily> families = {
      ModelFamily::kExponential, ModelFamily::kPareto1,
      ModelFamily::kUniform};
  return families;
}

constexpr int kL12Values[] = {0, 4, 8, 12, 16, 20};

struct GoldenRow {
  std::string family;
  std::string delay;
  int l12 = 0;
  double value = 0.0;
};

std::string golden_path(const std::string& name) {
  return std::string(AGEDTR_GOLDEN_DIR) + "/" + name;
}

bool regen_requested() {
  const char* env = std::getenv("AGEDTR_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void write_golden(const std::string& name,
                  const std::vector<GoldenRow>& rows) {
  std::ofstream out(golden_path(name));
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
  out << "family,delay,l12,value\n";
  for (const GoldenRow& r : rows) {
    char value[32];
    std::snprintf(value, sizeof(value), "%.12g", r.value);
    out << r.family << "," << r.delay << "," << r.l12 << "," << value
        << "\n";
  }
}

std::vector<GoldenRow> read_golden(const std::string& name) {
  std::ifstream in(golden_path(name));
  EXPECT_TRUE(in.good())
      << "missing golden " << golden_path(name)
      << " (regenerate with AGEDTR_REGEN_GOLDEN=1)";
  std::vector<GoldenRow> rows;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    GoldenRow row;
    std::string l12;
    std::string value;
    std::getline(fields, row.family, ',');
    std::getline(fields, row.delay, ',');
    std::getline(fields, l12, ',');
    std::getline(fields, value, ',');
    row.l12 = std::stoi(l12);
    row.value = std::stod(value);
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Computes the grid, then either rewrites the golden (regen mode) or
/// compares row-by-row within `rtol`.
void run_golden_case(const std::string& name, bool failures,
                     const std::function<double(
                         const core::ConvolutionSolver&,
                         const std::vector<core::ServerWorkload>&)>& metric,
                     double rtol) {
  std::vector<GoldenRow> rows;
  for (const ModelFamily family : golden_families()) {
    for (const bool severe : {false, true}) {
      const DcsScenario scenario = mini_two_server(family, severe, failures);
      const core::ConvolutionSolver solver = coarse_solver();
      for (const int l12 : kL12Values) {
        GoldenRow row;
        row.family = dist::model_family_name(family);
        row.delay = severe ? "severe" : "low";
        row.l12 = l12;
        row.value = metric(
            solver, core::apply_policy(
                        scenario, policy::make_two_server_policy(l12, 0)));
        rows.push_back(std::move(row));
      }
    }
  }
  if (regen_requested()) {
    write_golden(name, rows);
    return;
  }
  const std::vector<GoldenRow> golden = read_golden(name);
  ASSERT_EQ(golden.size(), rows.size())
      << name << ": grid shape changed; regenerate the golden";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    SCOPED_TRACE(name + ": " + rows[i].family + "/" + rows[i].delay +
                 " L12=" + std::to_string(rows[i].l12));
    EXPECT_EQ(rows[i].family, golden[i].family);
    EXPECT_EQ(rows[i].delay, golden[i].delay);
    EXPECT_EQ(rows[i].l12, golden[i].l12);
    const double scale = std::max(std::abs(golden[i].value), 1e-12);
    EXPECT_NEAR(rows[i].value, golden[i].value, rtol * scale);
  }
}

TEST(Golden, MiniFig1MeanExecutionTime) {
  // Fig. 1 analogue: T̄(L12) per family and delay regime, reliable servers.
  run_golden_case("fig1_mini_mean.csv", /*failures=*/false,
                  [](const core::ConvolutionSolver& solver,
                     const std::vector<core::ServerWorkload>& workloads) {
                    return solver.mean_execution_time(workloads);
                  },
                  /*rtol=*/1e-9);
}

TEST(Golden, MiniTable1Reliability) {
  // Table I analogue: R(L12) with exponential failures.
  run_golden_case("table1_mini_reliability.csv", /*failures=*/true,
                  [](const core::ConvolutionSolver& solver,
                     const std::vector<core::ServerWorkload>& workloads) {
                    return solver.reliability(workloads);
                  },
                  /*rtol=*/1e-9);
}

TEST(Golden, MiniQos) {
  // QoS at a mid-range deadline exercises the truncated-CDF path.
  run_golden_case("qos_mini.csv", /*failures=*/true,
                  [](const core::ConvolutionSolver& solver,
                     const std::vector<core::ServerWorkload>& workloads) {
                    return solver.qos(workloads, 60.0);
                  },
                  /*rtol=*/1e-9);
}

/// Structural sanity on top of the numeric pins: the mean sweep must be
/// finite and positive, and reliability must stay in (0, 1]. Runs on the
/// freshly computed values, so it holds in regen mode too.
TEST(Golden, GoldenValuesAreWellFormed) {
  for (const char* name :
       {"fig1_mini_mean.csv", "table1_mini_reliability.csv",
        "qos_mini.csv"}) {
    if (regen_requested()) continue;  // previous tests just rewrote them
    const std::vector<GoldenRow> rows = read_golden(name);
    EXPECT_EQ(rows.size(), golden_families().size() * 2 *
                               std::size(kL12Values))
        << name;
    for (const GoldenRow& r : rows) {
      EXPECT_TRUE(std::isfinite(r.value)) << name;
      EXPECT_GT(r.value, 0.0) << name;
      if (name != std::string("fig1_mini_mean.csv")) {
        EXPECT_LE(r.value, 1.0) << name;
      }
    }
  }
}

}  // namespace
}  // namespace agedtr
