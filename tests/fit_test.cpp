// MLE fitters recover their generating parameters, and the paper's
// histogram-squared-error model selection identifies the true family —
// the machinery behind Fig. 4(a,b).
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/gamma.hpp"
#include "agedtr/dist/lognormal.hpp"
#include "agedtr/dist/pareto.hpp"
#include "agedtr/dist/uniform.hpp"
#include "agedtr/dist/weibull.hpp"
#include "agedtr/random/rng.hpp"
#include "agedtr/stats/fit.hpp"
#include "agedtr/stats/model_select.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::stats {
namespace {

std::vector<double> draw(const dist::Distribution& d, std::size_t n,
                         std::uint64_t seed) {
  random::Rng rng(seed);
  std::vector<double> samples(n);
  for (double& x : samples) x = d.sample(rng);
  return samples;
}

TEST(FitExponential, RecoversRate) {
  const dist::Exponential truth(0.4);
  const auto fit = fit_exponential(draw(truth, 20000, 1));
  const auto* e = dynamic_cast<const dist::Exponential*>(fit.distribution.get());
  ASSERT_NE(e, nullptr);
  EXPECT_NEAR(e->rate(), 0.4, 0.01);
}

TEST(FitShiftedExponential, RecoversShiftAndRate) {
  const dist::ShiftedExponential truth(1.5, 2.0);
  const auto fit = fit_shifted_exponential(draw(truth, 20000, 2));
  const auto* se =
      dynamic_cast<const dist::ShiftedExponential*>(fit.distribution.get());
  ASSERT_NE(se, nullptr);
  EXPECT_NEAR(se->shift(), 1.5, 0.01);
  EXPECT_NEAR(se->rate(), 2.0, 0.05);
}

TEST(FitUniform, RecoversBounds) {
  const dist::Uniform truth(0.5, 3.5);
  const auto fit = fit_uniform(draw(truth, 20000, 3));
  const auto* u = dynamic_cast<const dist::Uniform*>(fit.distribution.get());
  ASSERT_NE(u, nullptr);
  EXPECT_NEAR(u->a(), 0.5, 0.01);
  EXPECT_NEAR(u->b(), 3.5, 0.01);
}

TEST(FitPareto, RecoversShapeAndScale) {
  const dist::Pareto truth(1.2, 2.5);
  const auto fit = fit_pareto(draw(truth, 50000, 4));
  const auto* p = dynamic_cast<const dist::Pareto*>(fit.distribution.get());
  ASSERT_NE(p, nullptr);
  EXPECT_NEAR(p->xm(), 1.2, 0.005);
  EXPECT_NEAR(p->alpha(), 2.5, 0.05);
}

TEST(FitGamma, RecoversShapeAndScale) {
  const dist::Gamma truth(3.0, 0.7);
  const auto fit = fit_gamma(draw(truth, 50000, 5));
  const auto* g = dynamic_cast<const dist::Gamma*>(fit.distribution.get());
  ASSERT_NE(g, nullptr);
  EXPECT_NEAR(g->shape(), 3.0, 0.1);
  EXPECT_NEAR(g->scale(), 0.7, 0.03);
}

TEST(FitGamma, ShapeBelowOne) {
  const dist::Gamma truth(0.6, 2.0);
  const auto fit = fit_gamma(draw(truth, 50000, 6));
  const auto* g = dynamic_cast<const dist::Gamma*>(fit.distribution.get());
  ASSERT_NE(g, nullptr);
  EXPECT_NEAR(g->shape(), 0.6, 0.05);
}

TEST(FitShiftedGamma, RecoversAllThreeParameters) {
  // The paper's transfer-time law: shift + Gamma.
  const dist::ShiftedGamma truth(0.6, 2.0, 0.3);
  const auto fit = fit_shifted_gamma(draw(truth, 50000, 7));
  const auto* sg =
      dynamic_cast<const dist::ShiftedGamma*>(fit.distribution.get());
  ASSERT_NE(sg, nullptr);
  EXPECT_NEAR(sg->shift(), 0.6, 0.08);
  EXPECT_NEAR(sg->mean(), truth.mean(), 0.02);
}

TEST(FitShiftedGamma, ZeroShiftDataFitsPlainGamma) {
  // Data generated without a shift: the profile MLE should drive the shift
  // toward 0 and recover the gamma parameters.
  const dist::Gamma truth(2.0, 1.0);
  const auto fit = fit_shifted_gamma(draw(truth, 30000, 8));
  EXPECT_NEAR(fit.distribution->mean(), truth.mean(), 0.05);
  const auto* sg =
      dynamic_cast<const dist::ShiftedGamma*>(fit.distribution.get());
  ASSERT_NE(sg, nullptr);
  EXPECT_LT(sg->shift(), 0.05);
}

TEST(FitShiftedGamma, RejectsDataContainingZero) {
  std::vector<double> samples = draw(dist::Gamma(2.0, 1.0), 100, 8);
  samples.push_back(0.0);
  EXPECT_THROW(fit_shifted_gamma(samples), InvalidArgument);
}

TEST(FitWeibull, RecoversShapeAndScale) {
  const dist::Weibull truth(2.2, 1.4);
  const auto fit = fit_weibull(draw(truth, 50000, 9));
  const auto* w = dynamic_cast<const dist::Weibull*>(fit.distribution.get());
  ASSERT_NE(w, nullptr);
  EXPECT_NEAR(w->shape(), 2.2, 0.05);
  EXPECT_NEAR(w->scale(), 1.4, 0.02);
}

TEST(FitLogNormal, RecoversMuSigma) {
  const dist::LogNormal truth(0.3, 0.5);
  const auto fit = fit_lognormal(draw(truth, 50000, 10));
  const auto* l = dynamic_cast<const dist::LogNormal*>(fit.distribution.get());
  ASSERT_NE(l, nullptr);
  EXPECT_NEAR(l->mu(), 0.3, 0.01);
  EXPECT_NEAR(l->sigma(), 0.5, 0.01);
}

TEST(Fit, LogLikelihoodOrdersModels) {
  const dist::Gamma truth(3.0, 1.0);
  const auto samples = draw(truth, 5000, 11);
  const double ll_gamma = fit_gamma(samples).log_likelihood;
  const double ll_exp = fit_exponential(samples).log_likelihood;
  EXPECT_GT(ll_gamma, ll_exp);
}

TEST(Fit, RejectsDegenerateData) {
  EXPECT_THROW(fit_exponential({0.0, 0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(fit_uniform({2.0, 2.0, 2.0}), InvalidArgument);
  EXPECT_THROW(fit_pareto({0.0, 1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(fit_gamma({1.0, 0.0, 2.0}), InvalidArgument);
  EXPECT_THROW(fit_exponential({1.0}), InvalidArgument);
}

struct SelectionCase {
  std::string label;
  dist::DistPtr truth;
  std::string expected_family;
};

class ModelSelectionTest : public ::testing::TestWithParam<SelectionCase> {};

INSTANTIATE_TEST_SUITE_P(
    RecoversTrueFamily, ModelSelectionTest,
    ::testing::Values(
        SelectionCase{"pareto",
                      std::make_shared<dist::Pareto>(2.0, 2.3), "pareto"},
        SelectionCase{"shifted_gamma",
                      std::make_shared<dist::ShiftedGamma>(0.6, 2.0, 0.3),
                      "shifted_gamma"},
        SelectionCase{"uniform",
                      std::make_shared<dist::Uniform>(1.0, 3.0), "uniform"},
        SelectionCase{"exponential",
                      std::make_shared<dist::Exponential>(0.8),
                      "exponential"}),
    [](const ::testing::TestParamInfo<SelectionCase>& param_info) {
      return param_info.param.label;
    });

TEST_P(ModelSelectionTest, PaperCriterionPicksRightFamily) {
  const auto samples = draw(*GetParam().truth, 20000, 12);
  const ModelSelection sel = select_model(samples);
  // The winner must either be the true family or fit at least as well in KS
  // distance (families can genuinely tie, e.g. exponential within gamma).
  const std::string winner = sel.best().family;
  if (winner != GetParam().expected_family) {
    double true_ks = -1.0;
    for (const CandidateFit& c : sel.ranked) {
      if (c.family == GetParam().expected_family) true_ks = c.ks;
    }
    ASSERT_GE(true_ks, 0.0) << "true family missing from candidates";
    EXPECT_LE(sel.best().ks, true_ks + 0.01)
        << "winner " << winner << " fits materially worse than the truth";
  }
}

TEST(ModelSelection, RanksByCriterion) {
  const auto samples = draw(dist::Exponential(1.0), 5000, 13);
  const ModelSelection sel = select_model(samples);
  for (std::size_t i = 1; i < sel.ranked.size(); ++i) {
    EXPECT_LE(sel.ranked[i - 1].squared_error, sel.ranked[i].squared_error);
  }
}

TEST(ModelSelection, RequiresEnoughSamples) {
  EXPECT_THROW(select_model({1.0, 2.0, 3.0}), InvalidArgument);
}

}  // namespace
}  // namespace agedtr::stats
