// Scenario/policy plumbing and the hybrid system state, including the
// competing-risk regeneration machinery (G_X, race survival, transitions).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "agedtr/core/regeneration.hpp"
#include "agedtr/core/scenario.hpp"
#include "agedtr/core/state.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/uniform.hpp"
#include "agedtr/numerics/quadrature.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::core {
namespace {

DcsScenario two_server_scenario(int m1, int m2, bool with_failures) {
  std::vector<ServerSpec> servers = {
      {m1, dist::Exponential::with_mean(2.0),
       with_failures ? dist::Exponential::with_mean(1000.0) : nullptr},
      {m2, dist::Exponential::with_mean(1.0),
       with_failures ? dist::Exponential::with_mean(500.0) : nullptr}};
  return make_uniform_network_scenario(std::move(servers),
                                       dist::Exponential::with_mean(1.0),
                                       dist::Exponential::with_mean(0.2));
}

TEST(DtrPolicy, AccessorsAndAggregates) {
  DtrPolicy p(3);
  p.set(0, 1, 5);
  p.set(0, 2, 3);
  p.set(2, 0, 7);
  EXPECT_EQ(p(0, 1), 5);
  EXPECT_EQ(p.outgoing(0), 8);
  EXPECT_EQ(p.incoming(0), 7);
  EXPECT_EQ(p.incoming(2), 3);
  EXPECT_FALSE(p.is_identity());
  EXPECT_TRUE(DtrPolicy(3).is_identity());
}

TEST(DtrPolicy, RejectsSelfTransferAndNegatives) {
  DtrPolicy p(2);
  EXPECT_THROW(p.set(0, 0, 1), InvalidArgument);
  EXPECT_THROW(p.set(0, 1, -1), InvalidArgument);
  EXPECT_THROW(p.set(0, 2, 1), InvalidArgument);
}

TEST(Scenario, ValidateCatchesMissingLaws) {
  DcsScenario s = two_server_scenario(10, 5, false);
  s.servers[0].service = nullptr;
  EXPECT_THROW(s.validate(), InvalidArgument);
}

/// A syntactically valid law with a planted (possibly degenerate) mean, for
/// exercising the construction-time validation.
class PlantedMeanDist : public dist::Distribution {
 public:
  explicit PlantedMeanDist(double mean) : mean_(mean) {}
  [[nodiscard]] double pdf(double) const override { return 0.0; }
  [[nodiscard]] double cdf(double) const override { return 0.0; }
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] double variance() const override { return 1.0; }
  [[nodiscard]] std::string name() const override { return "planted"; }
  [[nodiscard]] std::string describe() const override { return "planted"; }

 private:
  double mean_;
};

TEST(Scenario, ValidateRejectsDegenerateLawMeans) {
  const auto planted = [](double mean) {
    return std::make_shared<const PlantedMeanDist>(mean);
  };
  for (const double bad : {-1.0, 0.0, std::nan("")}) {
    DcsScenario s = two_server_scenario(10, 5, true);
    s.servers[1].service = planted(bad);
    EXPECT_THROW(s.validate(), InvalidArgument) << "service mean " << bad;

    DcsScenario f = two_server_scenario(10, 5, true);
    f.servers[0].failure = planted(bad);
    EXPECT_THROW(f.validate(), InvalidArgument) << "failure mean " << bad;

    DcsScenario t = two_server_scenario(10, 5, true);
    t.transfer[0][1] = planted(bad);
    EXPECT_THROW(t.validate(), InvalidArgument) << "transfer mean " << bad;

    DcsScenario n = two_server_scenario(10, 5, true);
    n.fn_transfer[1][0] = planted(bad);
    EXPECT_THROW(n.validate(), InvalidArgument) << "FN mean " << bad;
  }
  // The message carries the offender's name and a file:line prefix.
  DcsScenario s = two_server_scenario(10, 5, false);
  s.servers[1].service = planted(-1.0);
  try {
    s.validate();
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("planted"), std::string::npos) << what;
    EXPECT_NE(what.find("server 1"), std::string::npos) << what;
    EXPECT_NE(what.find("scenario.cpp:"), std::string::npos) << what;
  }
}

TEST(Scenario, ValidateAllowsInfiniteMeans) {
  // Pareto with α <= 1 has E[X] = ∞; that is a legitimate model, not a
  // configuration error.
  DcsScenario s = two_server_scenario(10, 5, false);
  s.servers[0].service = std::make_shared<const PlantedMeanDist>(
      std::numeric_limits<double>::infinity());
  EXPECT_NO_THROW(s.validate());
}

TEST(Scenario, ValidateCrossChecksDeclaredWorkload) {
  DcsScenario s = two_server_scenario(10, 5, false);
  s.declared_total_tasks = 15;
  EXPECT_NO_THROW(s.validate());
  s.declared_total_tasks = 200;
  try {
    s.validate();
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("200"), std::string::npos) << what;
    EXPECT_NE(what.find("15"), std::string::npos) << what;
  }
}

TEST(Scenario, ValidateRejectsEmptyServerSetAndNegativeLoads) {
  DcsScenario empty;
  EXPECT_THROW(empty.validate(), InvalidArgument);

  DcsScenario s = two_server_scenario(10, 5, false);
  s.servers[1].initial_tasks = -3;
  try {
    s.validate();
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("server 1"), std::string::npos)
        << e.what();
  }
}

TEST(Scenario, ValidateCatchesShapeMismatch) {
  DcsScenario s = two_server_scenario(10, 5, false);
  s.transfer.pop_back();
  EXPECT_THROW(s.validate(), InvalidArgument);
}

TEST(Scenario, TotalTasks) {
  EXPECT_EQ(two_server_scenario(100, 50, false).total_tasks(), 150);
}

TEST(ApplyPolicy, MovesTasksIntoGroups) {
  const DcsScenario s = two_server_scenario(100, 50, false);
  DtrPolicy policy(2);
  policy.set(0, 1, 30);
  policy.set(1, 0, 25);
  const auto w = apply_policy(s, policy);
  EXPECT_EQ(w[0].local_tasks, 70);
  EXPECT_EQ(w[1].local_tasks, 25);
  ASSERT_EQ(w[0].inbound.size(), 1u);
  EXPECT_EQ(w[0].inbound[0].tasks, 25);
  EXPECT_EQ(w[1].inbound[0].tasks, 30);
  EXPECT_EQ(w[0].total_tasks(), 95);
  EXPECT_EQ(w[1].total_tasks(), 55);
}

TEST(ApplyPolicy, RejectsOverdraft) {
  const DcsScenario s = two_server_scenario(10, 5, false);
  DtrPolicy policy(2);
  policy.set(0, 1, 11);
  EXPECT_THROW(apply_policy(s, policy), InvalidArgument);
}

TEST(SystemState, InitialConfiguration) {
  const DcsScenario s = two_server_scenario(100, 50, true);
  DtrPolicy policy(2);
  policy.set(0, 1, 30);
  const SystemState st = SystemState::initial(s, policy);
  EXPECT_EQ(st.tasks[0], 70);
  EXPECT_EQ(st.tasks[1], 50);
  ASSERT_EQ(st.groups.size(), 1u);
  EXPECT_EQ(st.groups[0].tasks, 30);
  EXPECT_EQ(st.groups[0].to, 1u);
  EXPECT_FALSE(st.workload_done());
  EXPECT_FALSE(st.workload_lost());
  for (double a : st.service_age) EXPECT_DOUBLE_EQ(a, 0.0);
}

TEST(SystemState, DoneAndLostPredicates) {
  const DcsScenario s = two_server_scenario(1, 0, true);
  SystemState st = SystemState::initial(s, DtrPolicy(2));
  EXPECT_FALSE(st.workload_done());
  st.tasks[0] = 0;
  EXPECT_TRUE(st.workload_done());
  st.tasks[0] = 1;
  st.up[0] = 0;
  EXPECT_TRUE(st.workload_lost());
  // A group bound for a dead server also loses the workload.
  st.up[0] = 1;
  st.tasks[0] = 0;
  st.groups.push_back({1, 0, 3, s.transfer[1][0], 0.0});
  st.up[0] = 0;
  EXPECT_TRUE(st.workload_lost());
}

TEST(SystemState, AdvanceAges) {
  const DcsScenario s = two_server_scenario(2, 2, true);
  DtrPolicy policy(2);
  policy.set(0, 1, 1);
  SystemState st = SystemState::initial(s, policy);
  st.advance_ages(2.5);
  EXPECT_DOUBLE_EQ(st.service_age[0], 2.5);
  EXPECT_DOUBLE_EQ(st.failure_age[1], 2.5);
  EXPECT_DOUBLE_EQ(st.groups[0].age, 2.5);
  EXPECT_THROW(st.advance_ages(-1.0), InvalidArgument);
}

TEST(Regeneration, ClockInventory) {
  const DcsScenario s = two_server_scenario(5, 0, true);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  const SystemState st = SystemState::initial(s, policy);
  const RegenerationAnalysis analysis(s, st);
  // Server 1: service (3 left) + failure; server 2: failure only (no tasks
  // yet); one group in transit.
  EXPECT_EQ(analysis.clocks().size(), 4u);
}

TEST(Regeneration, WinProbabilitiesSumToOne) {
  const DcsScenario s = two_server_scenario(3, 2, true);
  DtrPolicy policy(2);
  policy.set(1, 0, 1);
  const SystemState st = SystemState::initial(s, policy);
  const RegenerationAnalysis analysis(s, st);
  double total = 0.0;
  for (std::size_t e = 0; e < analysis.clocks().size(); ++e) {
    total += analysis.win_probability(e);
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(Regeneration, ExponentialRaceMatchesClosedForm) {
  // All-exponential race: P{service_1 wins} = μ1/(μ1+μ2+λ1+λ2+γ) and
  // E[τ] = 1/Σrates.
  const DcsScenario s = two_server_scenario(3, 2, true);
  DtrPolicy policy(2);
  policy.set(1, 0, 1);
  const SystemState st = SystemState::initial(s, policy);
  const RegenerationAnalysis analysis(s, st);
  const double total_rate = 0.5 + 1.0 + 1e-3 + 2e-3 + 1.0;
  EXPECT_NEAR(analysis.expected_minimum(), 1.0 / total_rate, 1e-6);
  for (std::size_t e = 0; e < analysis.clocks().size(); ++e) {
    const Clock& c = analysis.clocks()[e];
    const double rate = 1.0 / c.law->mean();
    EXPECT_NEAR(analysis.win_probability(e), rate / total_rate, 1e-6);
  }
}

TEST(Regeneration, RegenerationPdfIntegratesToOne) {
  // Mixed laws: uniform service, exponential failure.
  std::vector<ServerSpec> servers = {
      {2, std::make_shared<dist::Uniform>(0.5, 2.5),
       dist::Exponential::with_mean(100.0)}};
  DcsScenario s;
  s.servers = std::move(servers);
  s.transfer = {{nullptr}};
  const SystemState st = SystemState::initial(s, DtrPolicy(1));
  const RegenerationAnalysis analysis(s, st);
  const double h = analysis.horizon();
  const double total =
      numerics::integrate([&](double t) { return analysis.regeneration_pdf(t); },
                          0.0, h)
          .value;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(Regeneration, HorizonRespectsBoundedSupport) {
  std::vector<ServerSpec> servers = {
      {1, std::make_shared<dist::Uniform>(0.0, 3.0), nullptr}};
  DcsScenario s;
  s.servers = std::move(servers);
  s.transfer = {{nullptr}};
  const SystemState st = SystemState::initial(s, DtrPolicy(1));
  const RegenerationAnalysis analysis(s, st);
  EXPECT_LE(analysis.horizon(), 3.0 + 1e-12);
}

TEST(Regeneration, ServiceEventTransition) {
  const DcsScenario s = two_server_scenario(3, 2, true);
  const SystemState st = SystemState::initial(s, DtrPolicy(2));
  const RegenerationAnalysis analysis(s, st);
  // Find the service clock of server 0.
  for (const Clock& c : analysis.clocks()) {
    if (c.kind == Clock::Kind::kService && c.index == 0) {
      const SystemState next = apply_regeneration_event(s, st, c, 1.5);
      EXPECT_EQ(next.tasks[0], 2);
      EXPECT_DOUBLE_EQ(next.service_age[0], 0.0);  // fresh task
      EXPECT_DOUBLE_EQ(next.service_age[1], 1.5);  // aged by the event time
      EXPECT_DOUBLE_EQ(next.failure_age[0], 1.5);
      return;
    }
  }
  FAIL() << "service clock not found";
}

TEST(Regeneration, FailureSpawnsFnPackets) {
  const DcsScenario s = two_server_scenario(3, 2, true);
  const SystemState st = SystemState::initial(s, DtrPolicy(2));
  const RegenerationAnalysis analysis(s, st);
  for (const Clock& c : analysis.clocks()) {
    if (c.kind == Clock::Kind::kFailure && c.index == 1) {
      const SystemState next = apply_regeneration_event(s, st, c, 0.7);
      EXPECT_FALSE(static_cast<bool>(next.up[1]));
      ASSERT_EQ(next.fn_packets.size(), 1u);
      EXPECT_EQ(next.fn_packets[0].from, 1u);
      EXPECT_EQ(next.fn_packets[0].to, 0u);
      EXPECT_TRUE(next.workload_lost());  // server 1 still had tasks
      return;
    }
  }
  FAIL() << "failure clock not found";
}

TEST(Regeneration, GroupArrivalStartsIdleServer) {
  const DcsScenario s = two_server_scenario(5, 0, false);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  SystemState st = SystemState::initial(s, policy);
  st.advance_ages(1.0);
  const RegenerationAnalysis analysis(s, st);
  for (const Clock& c : analysis.clocks()) {
    if (c.kind == Clock::Kind::kGroupArrival) {
      const SystemState next = apply_regeneration_event(s, st, c, 0.5);
      EXPECT_EQ(next.tasks[1], 2);
      EXPECT_TRUE(next.groups.empty());
      // Server 2 was idle: its service clock starts fresh.
      EXPECT_DOUBLE_EQ(next.service_age[1], 0.0);
      // Server 1 keeps serving its aged task.
      EXPECT_DOUBLE_EQ(next.service_age[0], 1.5);
      return;
    }
  }
  FAIL() << "group arrival clock not found";
}

TEST(Regeneration, FnArrivalUpdatesPerceivedState) {
  const DcsScenario s = two_server_scenario(1, 1, true);
  SystemState st = SystemState::initial(s, DtrPolicy(2));
  st.up[0] = 0;
  st.tasks[0] = 0;
  st.fn_packets.push_back({0, 1, s.fn_transfer[0][1], 0.0});
  const RegenerationAnalysis analysis(s, st);
  for (const Clock& c : analysis.clocks()) {
    if (c.kind == Clock::Kind::kFnArrival) {
      const SystemState next = apply_regeneration_event(s, st, c, 0.1);
      EXPECT_TRUE(next.fn_packets.empty());
      EXPECT_FALSE(static_cast<bool>(next.perceived[1][0]));
      EXPECT_TRUE(static_cast<bool>(next.perceived[0][1]));
      return;
    }
  }
  FAIL() << "FN clock not found";
}

TEST(Regeneration, AgedClocksChangeTheRace) {
  // Uniform(0,3) service aged by 2 must win against a fresh Uniform(0,3)
  // more than half the time.
  std::vector<ServerSpec> servers = {
      {1, std::make_shared<dist::Uniform>(0.0, 3.0), nullptr},
      {1, std::make_shared<dist::Uniform>(0.0, 3.0), nullptr}};
  DcsScenario s;
  s.servers = std::move(servers);
  s.transfer = {{nullptr, dist::Exponential::with_mean(1.0)},
                {dist::Exponential::with_mean(1.0), nullptr}};
  SystemState st = SystemState::initial(s, DtrPolicy(2));
  st.service_age[0] = 2.0;
  const RegenerationAnalysis analysis(s, st);
  ASSERT_EQ(analysis.clocks().size(), 2u);
  const double p0 = analysis.win_probability(0);
  const double p1 = analysis.win_probability(1);
  EXPECT_GT(p0, 0.7);
  EXPECT_NEAR(p0 + p1, 1.0, 1e-6);
}

}  // namespace
}  // namespace agedtr::core
