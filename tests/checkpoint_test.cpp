// util::Checkpoint: crash-consistent journal roundtrips, the discard rules
// (tag/version/corruption/truncation), the duplicate-key contract, the
// crash-injection hook, field packing — and the tentpole's acceptance
// criterion: an Algorithm 1 devise() killed between journal records and
// restarted with --resume semantics produces a bit-identical policy while
// replaying the finished subproblems from the journal.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/algorithm1.hpp"
#include "agedtr/util/checkpoint.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr {
namespace {

using core::DcsScenario;
using core::ServerSpec;
using dist::ModelFamily;

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "agedtr_" + name + ".ckpt";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

TEST(Checkpoint, RoundtripsUnitsAcrossInstances) {
  const std::string path = temp_path("roundtrip");
  {
    Checkpoint journal(path, "tag-v1");
    EXPECT_EQ(journal.size(), 0u);
    journal.record("unit a", "payload a");
    journal.record("unit b", "payload with\nnewline\tand tab \\ backslash");
    EXPECT_EQ(journal.stats().recorded_units, 2u);
  }
  Checkpoint reopened(path, "tag-v1");
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_EQ(reopened.stats().loaded_units, 2u);
  EXPECT_FALSE(reopened.stats().discarded);
  EXPECT_TRUE(reopened.contains("unit a"));
  const std::optional<std::string> b = reopened.find("unit b");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, "payload with\nnewline\tand tab \\ backslash");
  EXPECT_EQ(reopened.stats().hits, 1u);
  // Insertion order survives the roundtrip.
  EXPECT_EQ(reopened.units()[0].first, "unit a");
  EXPECT_EQ(reopened.units()[1].first, "unit b");
}

TEST(Checkpoint, RunUnitComputesOnceThenReplays) {
  const std::string path = temp_path("run_unit");
  int computations = 0;
  const auto compute = [&] {
    ++computations;
    return std::string("expensive result");
  };
  {
    Checkpoint journal(path, "t");
    EXPECT_EQ(journal.run_unit("k", compute), "expensive result");
    EXPECT_EQ(journal.run_unit("k", compute), "expensive result");
    EXPECT_EQ(computations, 1);  // second call replayed in-memory
  }
  Checkpoint reopened(path, "t");
  EXPECT_EQ(reopened.run_unit("k", compute), "expensive result");
  EXPECT_EQ(computations, 1);  // replayed from disk
  EXPECT_EQ(reopened.stats().hits, 1u);
}

TEST(Checkpoint, TagMismatchDiscardsTheJournal) {
  const std::string path = temp_path("tag");
  { Checkpoint(path, "config A").record("k", "v"); }
  Checkpoint other(path, "config B");
  EXPECT_EQ(other.size(), 0u);
  EXPECT_TRUE(other.stats().discarded);
  EXPECT_NE(other.stats().discard_reason.find("tag"), std::string::npos);
}

TEST(Checkpoint, CorruptionAndTruncationDiscardTheJournal) {
  const std::string path = temp_path("corrupt");
  { Checkpoint(path, "t").record("k", "value"); }
  const std::string good = read_file(path);
  ASSERT_FALSE(good.empty());

  std::string flipped = good;
  flipped[flipped.find("value")] = 'V';
  write_file(path, flipped);
  EXPECT_TRUE(Checkpoint(path, "t").stats().discarded);

  write_file(path, good.substr(0, good.size() / 2));
  EXPECT_TRUE(Checkpoint(path, "t").stats().discarded);

  // The pristine bytes still load (the discards above didn't poison
  // anything outside the file).
  write_file(path, good);
  EXPECT_EQ(Checkpoint(path, "t").size(), 1u);
}

TEST(Checkpoint, TruncatedTailSalvagesTheCompleteUnitPrefix) {
  const std::string path = temp_path("tail_mid_unit");
  {
    Checkpoint journal(path, "t");
    journal.record("u1", "alpha");
    journal.record("u2", "beta");
    journal.record("u3", "gamma");
  }
  // Tear the file in the middle of u3's record: the partial final record
  // must be discarded silently, the earlier records preserved.
  const std::string good = read_file(path);
  const std::size_t cut = good.find("unit u3\tgam") + 9;  // mid-payload
  write_file(path, good.substr(0, cut));

  Checkpoint salvaged(path, "t");
  EXPECT_EQ(salvaged.size(), 2u);
  EXPECT_TRUE(salvaged.contains("u1"));
  EXPECT_TRUE(salvaged.contains("u2"));
  EXPECT_FALSE(salvaged.contains("u3"));
  EXPECT_FALSE(salvaged.stats().discarded);
  EXPECT_TRUE(salvaged.stats().tail_salvaged);
  EXPECT_EQ(salvaged.stats().loaded_units, 2u);
  EXPECT_NE(salvaged.stats().salvage_reason.find("salvaged 2"),
            std::string::npos);

  // The salvaged journal keeps working: a new record re-seals the file and
  // the next open restores everything without salvage.
  salvaged.record("u3", "gamma again");
  Checkpoint reopened(path, "t");
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_FALSE(reopened.stats().tail_salvaged);
  EXPECT_EQ(*reopened.find("u3"), "gamma again");
  EXPECT_EQ(*reopened.find("u1"), "alpha");
}

TEST(Checkpoint, TruncatedEndTrailerSalvagesEveryUnit) {
  const std::string path = temp_path("tail_mid_end");
  {
    Checkpoint journal(path, "t");
    journal.record("u1", "alpha");
    journal.record("u2", "beta");
  }
  // Tear inside the `end <count> <checksum>` trailer itself: every unit
  // line is complete, so all of them survive.
  const std::string good = read_file(path);
  const std::size_t cut = good.rfind("end ") + 7;
  write_file(path, good.substr(0, cut));

  Checkpoint salvaged(path, "t");
  EXPECT_EQ(salvaged.size(), 2u);
  EXPECT_TRUE(salvaged.stats().tail_salvaged);
  EXPECT_FALSE(salvaged.stats().discarded);
  EXPECT_EQ(*salvaged.find("u1"), "alpha");
  EXPECT_EQ(*salvaged.find("u2"), "beta");
}

TEST(Checkpoint, GarbledUnsealedTailDropsFromTheDamagePoint) {
  const std::string path = temp_path("tail_garbled");
  {
    Checkpoint journal(path, "t");
    journal.record("u1", "alpha");
    journal.record("u2", "beta");
  }
  // Replace u2's record (and the trailer) with garbage that is not a
  // well-formed unit line: salvage keeps u1 and stops at the damage.
  const std::string good = read_file(path);
  const std::size_t cut = good.find("unit u2");
  write_file(path, good.substr(0, cut) + "unit-without-tab or prefix\n\x01\x02");

  Checkpoint salvaged(path, "t");
  EXPECT_EQ(salvaged.size(), 1u);
  EXPECT_TRUE(salvaged.contains("u1"));
  EXPECT_FALSE(salvaged.contains("u2"));
  EXPECT_TRUE(salvaged.stats().tail_salvaged);
}

TEST(Checkpoint, SealedBodyCorruptionStillDiscardsEverything) {
  const std::string path = temp_path("sealed_corrupt");
  {
    Checkpoint journal(path, "t");
    journal.record("u1", "alpha");
    journal.record("u2", "beta");
  }
  // A *sealed* journal (complete trailer) with a flipped body byte could be
  // damaged anywhere — salvage must NOT resurrect any of it.
  std::string flipped = read_file(path);
  flipped[flipped.find("alpha")] = 'A';
  write_file(path, flipped);

  Checkpoint reopened(path, "t");
  EXPECT_EQ(reopened.size(), 0u);
  EXPECT_TRUE(reopened.stats().discarded);
  EXPECT_FALSE(reopened.stats().tail_salvaged);
  EXPECT_NE(reopened.stats().discard_reason.find("checksum"),
            std::string::npos);
}

TEST(Checkpoint, TornTagLineIsNeverSalvaged) {
  const std::string path = temp_path("tail_in_tag");
  {
    Checkpoint journal(path, "shared-tag");
    journal.record("u1", "alpha");
  }
  // Truncation inside the tag line: the producer identity cannot be
  // verified, so nothing is salvaged.
  const std::string good = read_file(path);
  write_file(path, good.substr(0, good.find("shared-tag") + 4));
  Checkpoint reopened(path, "shared-tag");
  EXPECT_EQ(reopened.size(), 0u);
  EXPECT_TRUE(reopened.stats().discarded);
  EXPECT_FALSE(reopened.stats().tail_salvaged);
}

TEST(Checkpoint, SalvageNeverCrossesATagMismatch) {
  const std::string path = temp_path("tail_foreign");
  {
    Checkpoint journal(path, "config A");
    journal.record("u1", "alpha");
    journal.record("u2", "beta");
  }
  // Foreign journal with a torn tail: the tag rules it out before any unit
  // is considered.
  const std::string good = read_file(path);
  write_file(path, good.substr(0, good.find("unit u2") + 5));
  Checkpoint other(path, "config B");
  EXPECT_EQ(other.size(), 0u);
  EXPECT_TRUE(other.stats().discarded);
  EXPECT_FALSE(other.stats().tail_salvaged);
  EXPECT_NE(other.stats().discard_reason.find("tag"), std::string::npos);
}

TEST(Checkpoint, FutureFormatVersionIsDiscardedNotParsed) {
  const std::string path = temp_path("version");
  { Checkpoint(path, "t").record("k", "v"); }
  std::string bumped = read_file(path);
  const std::string header = "agedtr-checkpoint 1";
  bumped.replace(bumped.find(header), header.size(), "agedtr-checkpoint 2");
  write_file(path, bumped);
  Checkpoint reopened(path, "t");
  EXPECT_EQ(reopened.size(), 0u);
  EXPECT_TRUE(reopened.stats().discarded);
}

TEST(Checkpoint, ResumeFalseIgnoresWhatIsOnDisk) {
  const std::string path = temp_path("fresh");
  { Checkpoint(path, "t").record("old", "stale"); }
  Checkpoint fresh(path, "t", /*resume=*/false);
  EXPECT_EQ(fresh.size(), 0u);
  EXPECT_TRUE(fresh.stats().discarded);
  EXPECT_NE(fresh.stats().discard_reason.find("resume disabled"),
            std::string::npos);
  fresh.record("new", "current");
  Checkpoint reopened(path, "t");
  EXPECT_FALSE(reopened.contains("old"));
  EXPECT_TRUE(reopened.contains("new"));
}

TEST(Checkpoint, ReRecordingAKeyIsAProducerBug) {
  Checkpoint journal(temp_path("dup"), "t");
  journal.record("k", "v");
  EXPECT_THROW(journal.record("k", "v2"), InvalidArgument);
}

TEST(Checkpoint, CrashHookLeavesAConsistentPrefixOnDisk) {
  const std::string path = temp_path("crash");
  {
    Checkpoint journal(path, "t");
    journal.crash_after_records_for_testing(2);
    journal.record("u1", "a");
    journal.record("u2", "b");
    EXPECT_THROW(journal.record("u3", "c"), CheckpointError);
  }
  // The "killed" run left the last completed snapshot: exactly two units.
  Checkpoint reopened(path, "t");
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_TRUE(reopened.contains("u1"));
  EXPECT_TRUE(reopened.contains("u2"));
  EXPECT_FALSE(reopened.contains("u3"));
}

TEST(Checkpoint, FieldPackingRoundtripsAwkwardStrings) {
  const std::vector<std::string> fields = {
      "plain", "", "with spaces", "1>2:50 3>4:7", "line\nbreak\ttab"};
  EXPECT_EQ(split_fields(join_fields(fields)), fields);
  // An empty payload is one empty field (join/split roundtrip from {""}).
  EXPECT_EQ(split_fields(join_fields({""})), std::vector<std::string>{""});
  EXPECT_EQ(split_fields(""), std::vector<std::string>{""});
}

// --- Algorithm 1 kill-and-resume (the tentpole's acceptance test) --------

DcsScenario small_scenario() {
  std::vector<ServerSpec> servers = {
      {8, dist::make_model_distribution(ModelFamily::kExponential, 2.0),
       nullptr},
      {4, dist::make_model_distribution(ModelFamily::kExponential, 1.0),
       nullptr},
      {3, dist::make_model_distribution(ModelFamily::kExponential, 0.5),
       nullptr}};
  return core::make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(ModelFamily::kExponential, 1.0),
      dist::Exponential::with_mean(0.2));
}

policy::Algorithm1Options small_options() {
  policy::Algorithm1Options options;
  options.objective = policy::Objective::kMeanExecutionTime;
  options.max_iterations = 2;
  options.conv.cells = 1024;
  return options;
}

void expect_same_policy(const core::DtrPolicy& a, const core::DtrPolicy& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << i << " -> " << j;
    }
  }
}

TEST(Algorithm1Checkpoint, KilledAndResumedDeviseIsBitIdentical) {
  const DcsScenario scenario = small_scenario();
  const policy::Algorithm1Result reference =
      policy::Algorithm1(small_options()).devise(scenario);

  // "Kill" the run between journal records: the crash hook lets three units
  // persist, then throws out of devise() exactly as a process death between
  // unit n and unit n+1 would leave things.
  const std::string path = temp_path("a1_resume");
  policy::Algorithm1Options crashing = small_options();
  crashing.checkpoint_path = path;
  crashing.checkpoint_crash_after_units = 3;
  EXPECT_THROW((void)policy::Algorithm1(crashing).devise(scenario),
               CheckpointError);

  // Resume: same inputs, same journal. The finished subproblems replay and
  // the result matches the uncheckpointed reference bit for bit.
  policy::Algorithm1Options resuming = small_options();
  resuming.checkpoint_path = path;
  const policy::Algorithm1Result resumed =
      policy::Algorithm1(resuming).devise(scenario);
  EXPECT_GT(resumed.journal_hits, 0u);
  EXPECT_EQ(resumed.iterations, reference.iterations);
  EXPECT_EQ(resumed.converged, reference.converged);
  expect_same_policy(resumed.policy, reference.policy);

  // A third run finds the journaled final result and short-circuits.
  const policy::Algorithm1Result replayed =
      policy::Algorithm1(resuming).devise(scenario);
  EXPECT_GT(replayed.journal_hits, 0u);
  EXPECT_EQ(replayed.iterations, reference.iterations);
  expect_same_policy(replayed.policy, reference.policy);
}

TEST(Algorithm1Checkpoint, TagFingerprintsPolicyAffectingOptions) {
  const DcsScenario scenario = small_scenario();
  const policy::QueueEstimates estimates =
      policy::perfect_estimates(scenario);
  const policy::Algorithm1Options base = small_options();

  policy::Algorithm1Options more_cells = base;
  more_cells.conv.cells = 2048;
  policy::Algorithm1Options markovian = base;
  markovian.markovian = true;

  const std::string tag =
      policy::algorithm1_checkpoint_tag(scenario, estimates, base);
  EXPECT_NE(tag,
            policy::algorithm1_checkpoint_tag(scenario, estimates, more_cells));
  EXPECT_NE(tag,
            policy::algorithm1_checkpoint_tag(scenario, estimates, markovian));

  // A journal produced under different options is discarded on open, so a
  // resumed run can never replay foreign results.
  const std::string path = temp_path("a1_tag");
  { Checkpoint(path, tag).record("pair 0 1 4", "2"); }
  Checkpoint other(
      path, policy::algorithm1_checkpoint_tag(scenario, estimates, markovian));
  EXPECT_EQ(other.size(), 0u);
  EXPECT_TRUE(other.stats().discarded);
}

TEST(Algorithm1Checkpoint, StaleJournalFromOtherScenarioIsIgnoredSafely) {
  const DcsScenario scenario = small_scenario();
  const std::string path = temp_path("a1_stale");
  // Plant garbage that is a *valid* journal for a different tag.
  { Checkpoint(path, "not an algorithm1 tag").record("result", "junk"); }

  policy::Algorithm1Options options = small_options();
  options.checkpoint_path = path;
  const policy::Algorithm1Result devised =
      policy::Algorithm1(options).devise(scenario);
  const policy::Algorithm1Result reference =
      policy::Algorithm1(small_options()).devise(scenario);
  expect_same_policy(devised.policy, reference.policy);

  // The foreign journal was discarded and overwritten: the file now holds
  // this run's own units under the Algorithm 1 tag, junk gone.
  Checkpoint reopened(
      path, policy::algorithm1_checkpoint_tag(
                scenario, policy::perfect_estimates(scenario), options));
  EXPECT_FALSE(reopened.stats().discarded);
  const std::optional<std::string> result = reopened.find("result");
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(*result, "junk");
}

}  // namespace
}  // namespace agedtr
