// DTR policy machinery: the 2-server exhaustive search (problems (3)/(4)),
// the Eq. (5) fair-share initial policy, Algorithm 1, and the
// Markovian-vs-age-dependent evaluator plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/algorithm1.hpp"
#include "agedtr/policy/initial_policy.hpp"
#include "agedtr/policy/objective.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::policy {
namespace {

using core::DcsScenario;
using core::DtrPolicy;
using core::ServerSpec;
using dist::ModelFamily;

DcsScenario scenario_2(ModelFamily family, int m1, int m2, double w1,
                       double w2, double z, double y1 = 0.0, double y2 = 0.0) {
  std::vector<ServerSpec> servers = {
      {m1, dist::make_model_distribution(family, w1),
       y1 > 0.0 ? dist::Exponential::with_mean(y1) : nullptr},
      {m2, dist::make_model_distribution(family, w2),
       y2 > 0.0 ? dist::Exponential::with_mean(y2) : nullptr}};
  return core::make_uniform_network_scenario(
      std::move(servers), dist::make_model_distribution(family, z),
      dist::Exponential::with_mean(0.2));
}

TEST(Objective, NamesAndDirections) {
  EXPECT_EQ(objective_name(Objective::kMeanExecutionTime),
            "mean_execution_time");
  EXPECT_FALSE(is_maximization(Objective::kMeanExecutionTime));
  EXPECT_TRUE(is_maximization(Objective::kQos));
  EXPECT_TRUE(is_maximization(Objective::kReliability));
}

TEST(Exponentialized, PreservesMeansMakesMemoryless) {
  const DcsScenario s = scenario_2(ModelFamily::kPareto1, 5, 3, 2.0, 1.0, 1.5);
  const DcsScenario e = exponentialized(s);
  EXPECT_TRUE(e.servers[0].service->is_memoryless());
  EXPECT_NEAR(e.servers[0].service->mean(), 2.0, 1e-12);
  EXPECT_TRUE(e.transfer[0][1]->is_memoryless());
  EXPECT_NEAR(e.transfer[0][1]->mean(), 1.5, 1e-12);
}

TEST(Evaluators, AgeDependentMatchesMarkovianOnExponentialScenario) {
  // On an all-exponential scenario the two evaluator backends must agree.
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 8, 4, 2.0, 1.0, 1.5);
  const PolicyEvaluator age =
      make_age_dependent_evaluator(s, Objective::kMeanExecutionTime);
  const PolicyEvaluator markov =
      make_markovian_evaluator(s, Objective::kMeanExecutionTime);
  DtrPolicy policy(2);
  policy.set(0, 1, 3);
  EXPECT_NEAR(age(policy), markov(policy), 0.05);
}

TEST(Evaluators, QosRequiresDeadline) {
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 4, 2, 2.0, 1.0, 1.5);
  EXPECT_THROW(make_age_dependent_evaluator(s, Objective::kQos),
               InvalidArgument);
  EXPECT_THROW(make_markovian_evaluator(s, Objective::kQos), InvalidArgument);
}

TEST(TwoServerSearch, SymmetricSystemBalances) {
  // Identical servers, all load on server 1, fast network: the optimum
  // moves about half the load over and sends nothing back.
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 20, 0, 1.0, 1.0, 0.2);
  const PolicyEvaluator eval =
      make_age_dependent_evaluator(s, Objective::kMeanExecutionTime);
  const TwoServerPolicySearch search(20, 0);
  const PolicyPoint best = search.optimize(eval, false);
  EXPECT_NEAR(best.l12, 10, 2);
  EXPECT_EQ(best.l21, 0);
}

TEST(TwoServerSearch, SlowNetworkSuppressesReallocation) {
  // With a network far slower than the service advantage, keeping the load
  // local wins.
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 10, 0, 1.0, 0.5, 100.0);
  const PolicyEvaluator eval =
      make_age_dependent_evaluator(s, Objective::kMeanExecutionTime);
  const TwoServerPolicySearch search(10, 0);
  const PolicyPoint best = search.optimize(eval, false);
  EXPECT_EQ(best.l12, 0);
}

TEST(TwoServerSearch, SweepMatchesPointEvaluations) {
  const DcsScenario s =
      scenario_2(ModelFamily::kUniform, 6, 3, 2.0, 1.0, 1.0);
  const PolicyEvaluator eval =
      make_age_dependent_evaluator(s, Objective::kMeanExecutionTime);
  const TwoServerPolicySearch search(6, 3);
  const auto line = search.sweep_l12(eval, 1);
  ASSERT_EQ(line.size(), 7u);
  for (const PolicyPoint& p : line) {
    EXPECT_EQ(p.l21, 1);
    EXPECT_NEAR(p.value, eval(make_two_server_policy(p.l12, p.l21)), 1e-9);
  }
}

TEST(TwoServerSearch, SurfaceShapeAndParallelConsistency) {
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 5, 4, 2.0, 1.0, 1.0);
  const PolicyEvaluator eval =
      make_age_dependent_evaluator(s, Objective::kMeanExecutionTime);
  const TwoServerPolicySearch search(5, 4);
  ThreadPool pool(4);
  const auto serial = search.surface(eval);
  const auto parallel = search.surface(eval, &pool);
  ASSERT_EQ(serial.size(), 30u);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i].value, parallel[i].value, 1e-12);
  }
}

TEST(TwoServerSearch, ReliabilityObjectiveIsMaximized) {
  const DcsScenario s = scenario_2(ModelFamily::kExponential, 10, 0, 1.0, 1.0,
                                   0.5, 30.0, 1000.0);
  const PolicyEvaluator eval =
      make_age_dependent_evaluator(s, Objective::kReliability);
  const TwoServerPolicySearch search(10, 0);
  const PolicyPoint best = search.optimize(eval, Objective::kReliability);
  // Server 1 is failure-prone; pushing most work to the dependable server 2
  // must beat keeping it.
  EXPECT_GT(best.l12, 5);
  EXPECT_GT(best.value, eval(make_two_server_policy(0, 0)));
}

TEST(InitialPolicy, PerfectEstimatesMatchQueues) {
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 9, 4, 1.0, 1.0, 1.0);
  const QueueEstimates est = perfect_estimates(s);
  EXPECT_EQ(est[0][1], 4);
  EXPECT_EQ(est[1][0], 9);
  EXPECT_EQ(est[0][0], 9);
}

TEST(InitialPolicy, EqualSpeedsSplitEvenly) {
  // 12 tasks at server 1, equal speeds: target 6/6 ⇒ L⁰₁₂ = 6.
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 12, 0, 1.0, 1.0, 1.0);
  const DtrPolicy l0 = initial_policy(s, perfect_estimates(s),
                                      ReallocationCriterion::kSpeed);
  EXPECT_EQ(l0(0, 1), 6);
  EXPECT_EQ(l0(1, 0), 0);
}

TEST(InitialPolicy, SpeedWeightsShiftShares) {
  // Server 2 twice as fast: targets 4/8 ⇒ L⁰₁₂ = 8.
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 12, 0, 1.0, 0.5, 1.0);
  const DtrPolicy l0 = initial_policy(s, perfect_estimates(s),
                                      ReallocationCriterion::kSpeed);
  EXPECT_EQ(l0(0, 1), 8);
}

TEST(InitialPolicy, UnderloadedServerSendsNothing) {
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 2, 10, 1.0, 1.0, 1.0);
  const DtrPolicy l0 = initial_policy(s, perfect_estimates(s),
                                      ReallocationCriterion::kSpeed);
  EXPECT_EQ(l0(0, 1), 0);
  EXPECT_GT(l0(1, 0), 0);
}

TEST(InitialPolicy, ReliabilityCriterionFavorsDependableServer) {
  std::vector<ServerSpec> servers = {
      {12, dist::Exponential::with_mean(1.0),
       dist::Exponential::with_mean(10.0)},
      {0, dist::Exponential::with_mean(1.0),
       dist::Exponential::with_mean(1000.0)},
      {0, dist::Exponential::with_mean(1.0),
       dist::Exponential::with_mean(10.0)}};
  const DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(0.5),
      dist::Exponential::with_mean(0.2));
  const DtrPolicy l0 = initial_policy(s, perfect_estimates(s),
                                      ReallocationCriterion::kReliability);
  EXPECT_GT(l0(0, 1), l0(0, 2));
}

TEST(InitialPolicy, NeverExceedsQueue) {
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 5, 0, 5.0, 0.1, 1.0);
  const DtrPolicy l0 = initial_policy(s, perfect_estimates(s),
                                      ReallocationCriterion::kSpeed);
  EXPECT_LE(l0.outgoing(0), 5);
}

TEST(InitialPolicy, RejectsWrongSelfEstimate) {
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 5, 5, 1.0, 1.0, 1.0);
  QueueEstimates est = perfect_estimates(s);
  est[0][0] = 3;  // server 0 must know its own queue
  EXPECT_THROW(initial_policy(s, est, ReallocationCriterion::kSpeed),
               InvalidArgument);
}

TEST(Algorithm1, TwoServerReducesToDirectSearch) {
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 16, 0, 1.0, 1.0, 0.5);
  Algorithm1Options opts;
  opts.objective = Objective::kMeanExecutionTime;
  const Algorithm1 algo(opts);
  const Algorithm1Result result = algo.devise(s);
  EXPECT_TRUE(result.converged);
  // Directly optimize L12 with L21 = 0 for reference.
  const PolicyEvaluator eval =
      make_age_dependent_evaluator(s, Objective::kMeanExecutionTime);
  const TwoServerPolicySearch search(16, 0);
  int best_l12 = 0;
  double best = eval(make_two_server_policy(0, 0));
  for (const auto& p : search.sweep_l12(eval, 0)) {
    if (p.value < best) {
      best = p.value;
      best_l12 = p.l12;
    }
  }
  EXPECT_EQ(result.policy(0, 1), best_l12);
}

TEST(Algorithm1, PolicyIsFeasible) {
  std::vector<ServerSpec> servers;
  const std::vector<double> means = {5.0, 4.0, 3.0, 2.0, 1.0};
  const std::vector<int> tasks = {80, 50, 40, 20, 10};
  for (int j = 0; j < 5; ++j) {
    servers.push_back({tasks[static_cast<std::size_t>(j)],
                       dist::Exponential::with_mean(
                           means[static_cast<std::size_t>(j)]),
                       nullptr});
  }
  const DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(2.0),
      dist::Exponential::with_mean(0.2));
  Algorithm1Options opts;
  opts.objective = Objective::kMeanExecutionTime;
  opts.max_iterations = 3;
  const Algorithm1 algo(opts);
  const Algorithm1Result result = algo.devise(s);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_LE(result.policy.outgoing(i), s.servers[i].initial_tasks);
  }
  // The slow overloaded server must shed load toward the fast ones.
  EXPECT_GT(result.policy.outgoing(0), 0);
  EXPECT_EQ(result.policy.outgoing(4), 0);
}

TEST(Algorithm1, ImprovesOverNoReallocation) {
  std::vector<ServerSpec> servers = {
      {30, dist::Exponential::with_mean(3.0), nullptr},
      {6, dist::Exponential::with_mean(1.0), nullptr},
      {4, dist::Exponential::with_mean(0.5), nullptr}};
  const DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(1.0),
      dist::Exponential::with_mean(0.2));
  Algorithm1Options opts;
  opts.objective = Objective::kMeanExecutionTime;
  const Algorithm1 algo(opts);
  const Algorithm1Result result = algo.devise(s);
  const PolicyEvaluator eval =
      make_age_dependent_evaluator(s, Objective::kMeanExecutionTime);
  EXPECT_LT(eval(result.policy), eval(DtrPolicy(3)));
}

TEST(Algorithm1, MarkovianModeDiffersOnHeavyTails) {
  // Severe delays + Pareto laws: the exponential-model policy should differ
  // from the age-dependent one (the effect behind Table I/II).
  const DcsScenario s =
      scenario_2(ModelFamily::kPareto2, 40, 10, 2.0, 1.0, 9.0);
  Algorithm1Options age_opts;
  age_opts.objective = Objective::kMeanExecutionTime;
  Algorithm1Options markov_opts = age_opts;
  markov_opts.markovian = true;
  const Algorithm1Result age = Algorithm1(age_opts).devise(s);
  const Algorithm1Result markov = Algorithm1(markov_opts).devise(s);
  // Not a strict theorem, but with these parameters the optima separate;
  // equality would indicate the mode switch is wired to nothing.
  EXPECT_NE(age.policy(0, 1), markov.policy(0, 1));
}

TEST(Algorithm1, RespectsEstimates) {
  // If server 0 believes server 1 is overloaded, it sends nothing there.
  const DcsScenario s =
      scenario_2(ModelFamily::kExponential, 10, 0, 1.0, 1.0, 0.5);
  QueueEstimates est = perfect_estimates(s);
  est[0][1] = 50;  // stale view: server 1 looks busy
  Algorithm1Options opts;
  opts.objective = Objective::kMeanExecutionTime;
  const Algorithm1 algo(opts);
  const Algorithm1Result result = algo.devise(s, est);
  EXPECT_EQ(result.policy(0, 1), 0);
}

}  // namespace
}  // namespace agedtr::policy
