// The Table II benchmark machinery: optimal static allocations.
#include <gtest/gtest.h>

#include <numeric>

#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/allocation_search.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::policy {
namespace {

using core::DcsScenario;
using core::ServerSpec;

DcsScenario heterogeneous(std::vector<int> tasks, std::vector<double> means,
                          std::vector<double> failures = {}) {
  std::vector<ServerSpec> servers;
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    servers.push_back(
        {tasks[j], dist::Exponential::with_mean(means[j]),
         failures.empty() ? nullptr
                          : dist::Exponential::with_mean(failures[j])});
  }
  return core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(2.0),
      dist::Exponential::with_mean(0.2));
}

TEST(AllocationSearch, ConservesTotalTasks) {
  const DcsScenario s = heterogeneous({30, 0, 0}, {3.0, 2.0, 1.0});
  AllocationSearchOptions opts;
  const AllocationSearchResult r = optimal_allocation(s, opts);
  EXPECT_EQ(std::accumulate(r.allocation.begin(), r.allocation.end(), 0), 30);
}

TEST(AllocationSearch, EqualServersSplitEvenly) {
  const DcsScenario s = heterogeneous({24, 0}, {1.0, 1.0});
  AllocationSearchOptions opts;
  const AllocationSearchResult r = optimal_allocation(s, opts);
  EXPECT_NEAR(r.allocation[0], 12, 1);
  EXPECT_NEAR(r.allocation[1], 12, 1);
}

TEST(AllocationSearch, FasterServerGetsMore) {
  const DcsScenario s = heterogeneous({30, 0}, {2.0, 1.0});
  AllocationSearchOptions opts;
  const AllocationSearchResult r = optimal_allocation(s, opts);
  EXPECT_GT(r.allocation[1], r.allocation[0]);
}

TEST(AllocationSearch, BeatsAllOnSlowServer) {
  const DcsScenario s = heterogeneous({30, 0}, {3.0, 1.0});
  AllocationSearchOptions opts;
  const AllocationSearchResult best = optimal_allocation(s, opts);
  const double all_slow = score_allocation(s, {30, 0}, opts);
  EXPECT_LT(best.value, all_slow);
}

TEST(AllocationSearch, ReliabilityObjectiveAvoidsFragileServer) {
  const DcsScenario s =
      heterogeneous({20, 0}, {1.0, 1.0}, {5.0, 500.0});
  AllocationSearchOptions opts;
  opts.objective = policy::Objective::kReliability;
  const AllocationSearchResult r = optimal_allocation(s, opts);
  EXPECT_GT(r.allocation[1], r.allocation[0]);
}

TEST(AllocationSearch, McScoringAgreesWithAnalytic) {
  const DcsScenario s = heterogeneous({10, 6}, {2.0, 1.0});
  AllocationSearchOptions analytic;
  AllocationSearchOptions mc;
  mc.analytic = false;
  mc.replications = 20'000;
  const double a = score_allocation(s, {10, 6}, analytic);
  const double b = score_allocation(s, {10, 6}, mc);
  EXPECT_NEAR(a, b, 0.05 * a);
}

TEST(AllocationSearch, RejectsEmptyWorkload) {
  const DcsScenario s = heterogeneous({0, 0}, {1.0, 1.0});
  EXPECT_THROW(optimal_allocation(s, {}), InvalidArgument);
}

TEST(AllocationSearch, RejectsSizeMismatch) {
  const DcsScenario s = heterogeneous({5, 5}, {1.0, 1.0});
  EXPECT_THROW(static_cast<void>(score_allocation(s, {5}, {})), InvalidArgument);
}

}  // namespace
}  // namespace agedtr::policy
