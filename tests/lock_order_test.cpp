// The runtime lock-order validator (util/lock_order.hpp).
//
// The validator's logic is compiled into every build, so the first half
// drives the hooks directly: a deliberately inverted acquisition pair must
// be reported, a consistent order must not, and try_lock must neither
// check nor record inbound edges. The second half exercises the real
// instrumentation path — ThreadPool + Supervisor + LatticeWorkspace under
// load — and requires silence; under -DAGEDTR_LOCK_ORDER_CHECK=ON (the
// lock-order CI variant) that stress loop validates every Mutex
// acquisition the runtime actually makes, cross-checking the static
// lock-order pass of scripts/agedtr_analyze.py.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "agedtr/core/lattice_workspace.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/util/lock_order.hpp"
#include "agedtr/util/supervisor.hpp"
#include "agedtr/util/thread_annotations.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr {
namespace {

/// Installs a recording handler for the duration of a test (the default
/// handler aborts the process) and restores the previous state after.
class RecordingValidator {
 public:
  RecordingValidator() {
    lock_order::reset_for_testing();
    previous_ = lock_order::set_violation_handler(
        [this](const std::string& report) { reports_.push_back(report); });
  }
  ~RecordingValidator() {
    lock_order::set_violation_handler(std::move(previous_));
    lock_order::reset_for_testing();
  }

  [[nodiscard]] const std::vector<std::string>& reports() const {
    return reports_;
  }

 private:
  lock_order::ViolationHandler previous_;
  std::vector<std::string> reports_;
};

TEST(LockOrder, InvertedAcquisitionIsReported) {
  RecordingValidator validator;
  int a = 0, b = 0;  // any distinct addresses name two locks

  // Thread-order A -> B ...
  lock_order::on_acquire(&a);
  lock_order::on_acquire(&b);
  lock_order::on_release(&b);
  lock_order::on_release(&a);
  ASSERT_TRUE(validator.reports().empty());

  // ... then the deliberate inversion B -> A must fire before blocking.
  lock_order::on_acquire(&b);
  lock_order::on_acquire(&a);
  ASSERT_EQ(validator.reports().size(), 1u);
  EXPECT_NE(validator.reports()[0].find("lock-order cycle"),
            std::string::npos);
  lock_order::on_release(&a);
  lock_order::on_release(&b);
  EXPECT_EQ(lock_order::stats().violations, 1u);
}

TEST(LockOrder, ConsistentOrderStaysSilent) {
  RecordingValidator validator;
  int a = 0, b = 0, c = 0;
  for (int round = 0; round < 3; ++round) {
    lock_order::on_acquire(&a);
    lock_order::on_acquire(&b);
    lock_order::on_acquire(&c);
    lock_order::on_release(&c);
    lock_order::on_release(&b);
    lock_order::on_release(&a);
  }
  EXPECT_TRUE(validator.reports().empty());
  EXPECT_EQ(lock_order::stats().edges, 3u);  // a->b, a->c, b->c
}

TEST(LockOrder, TransitiveCycleIsReported) {
  RecordingValidator validator;
  int a = 0, b = 0, c = 0;
  // a -> b and b -> c ...
  lock_order::on_acquire(&a);
  lock_order::on_acquire(&b);
  lock_order::on_release(&b);
  lock_order::on_release(&a);
  lock_order::on_acquire(&b);
  lock_order::on_acquire(&c);
  lock_order::on_release(&c);
  lock_order::on_release(&b);
  // ... make c -> a a cycle even though no pair inverts directly.
  lock_order::on_acquire(&c);
  lock_order::on_acquire(&a);
  EXPECT_EQ(validator.reports().size(), 1u);
  lock_order::on_release(&a);
  lock_order::on_release(&c);
}

TEST(LockOrder, RecursiveAcquisitionIsReported) {
  RecordingValidator validator;
  int a = 0;
  lock_order::on_acquire(&a);
  lock_order::on_acquire(&a);
  ASSERT_EQ(validator.reports().size(), 1u);
  EXPECT_NE(validator.reports()[0].find("recursive"), std::string::npos);
  lock_order::on_release(&a);
  lock_order::on_release(&a);
}

TEST(LockOrder, TryAcquireRecordsNoInboundEdge) {
  RecordingValidator validator;
  int a = 0, b = 0;
  // Order A -> B established by blocking acquisitions.
  lock_order::on_acquire(&a);
  lock_order::on_acquire(&b);
  lock_order::on_release(&b);
  lock_order::on_release(&a);
  // A successful try_lock of A while holding B cannot deadlock (it does
  // not wait), so it must neither fire nor poison the graph with B -> A.
  lock_order::on_acquire(&b);
  lock_order::on_try_acquire(&a);
  lock_order::on_release(&a);
  lock_order::on_release(&b);
  EXPECT_TRUE(validator.reports().empty());
  EXPECT_EQ(lock_order::stats().edges, 1u);  // still just a->b

  // ... but a blocking acquisition made while *holding* a try-acquired
  // lock records edges from it as usual.
  int c = 0;
  lock_order::on_try_acquire(&c);
  lock_order::on_acquire(&a);
  lock_order::on_release(&a);
  lock_order::on_release(&c);
  EXPECT_EQ(lock_order::stats().edges, 2u);  // a->b, c->a
}

TEST(LockOrder, DestroyPurgesTheNode) {
  RecordingValidator validator;
  int a = 0, b = 0;
  lock_order::on_acquire(&a);
  lock_order::on_acquire(&b);
  lock_order::on_release(&b);
  lock_order::on_release(&a);
  ASSERT_EQ(lock_order::stats().edges, 1u);
  // After destruction the address may be recycled for an unrelated mutex;
  // it must not inherit the old ordering constraints.
  lock_order::on_destroy(&b);
  EXPECT_EQ(lock_order::stats().edges, 0u);
  lock_order::on_acquire(&b);
  lock_order::on_acquire(&a);  // would be an inversion if b's node survived
  lock_order::on_release(&a);
  lock_order::on_release(&b);
  EXPECT_TRUE(validator.reports().empty());
}

// ---------------------------------------------------------------------------
// The real instrumentation path: a ThreadPool + Supervisor + workspace
// stress loop must stay silent. Under AGEDTR_LOCK_ORDER_CHECK=ON every
// Mutex acquisition below flows through the validator; in a default build
// the hooks are compiled out of Mutex and the loop simply pins the
// concurrency smoke path.

TEST(LockOrder, RuntimeStressLoopStaysSilent) {
  RecordingValidator validator;

  ThreadPool pool(4);
  core::LatticeWorkspace workspace;
  const dist::DistPtr law = dist::Exponential::with_mean(2.0);

  SupervisorOptions options;
  options.deadline_seconds = 5.0;  // engage the watchdog + registry locks
  options.pool = &pool;
  const SupervisionReport report =
      Supervisor(options).run(64, [&](std::size_t index, const CancelToken&) {
        // Workspace lookups take the cache mutex and, on FFT-sized grids,
        // the plan-cache mutex while building spectra.
        const auto& base = workspace.base(law, 0.01, 512);
        const auto& sum =
            workspace.sum(law, 2 + index % 7, 0.01, 512);
        ASSERT_GT(base.total(), 0.0);
        ASSERT_GT(sum.total(), 0.0);
      });
  EXPECT_EQ(report.succeeded, 64u);

  EXPECT_TRUE(validator.reports().empty())
      << "first violation: " << validator.reports()[0];
  if (lock_order::enabled()) {
    // The instrumented build must have actually watched the loop.
    EXPECT_GT(lock_order::stats().acquisitions, 0u);
  }
  EXPECT_EQ(lock_order::stats().violations, 0u);
}

}  // namespace
}  // namespace agedtr
