// The speed/reliability trade-off machinery (the paper's Section III-A
// closing proposal).
#include <gtest/gtest.h>

#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/tradeoff.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::policy {
namespace {

core::DcsScenario conflicted_scenario() {
  // Server 1: slow but dependable; server 2: fast but fragile — the exact
  // conflict the paper describes between speed and reliability policies.
  std::vector<core::ServerSpec> servers = {
      {24, dist::make_model_distribution(dist::ModelFamily::kPareto1, 2.0),
       dist::Exponential::with_mean(500.0)},
      {6, dist::make_model_distribution(dist::ModelFamily::kPareto1, 0.5),
       dist::Exponential::with_mean(25.0)}};
  return core::make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(dist::ModelFamily::kPareto1, 0.5),
      dist::Exponential::with_mean(0.2));
}

TEST(Tradeoff, FrontierIsMonotone) {
  const auto analysis = tradeoff_analysis(conflicted_scenario(), 2);
  ASSERT_GE(analysis.frontier.size(), 2u);
  for (std::size_t i = 1; i < analysis.frontier.size(); ++i) {
    // Sorted by ascending time; reliability must strictly improve (that is
    // what being on the frontier means).
    EXPECT_GE(analysis.frontier[i].mean_execution_time,
              analysis.frontier[i - 1].mean_execution_time);
    EXPECT_GT(analysis.frontier[i].reliability,
              analysis.frontier[i - 1].reliability);
  }
}

TEST(Tradeoff, FrontierDominatesInteriorPoints) {
  const auto analysis = tradeoff_analysis(conflicted_scenario(), 3);
  for (const TradeoffPoint& p : analysis.points) {
    bool dominated_or_on_frontier = false;
    for (const TradeoffPoint& f : analysis.frontier) {
      if (f.mean_execution_time <= p.mean_execution_time + 1e-12 &&
          f.reliability >= p.reliability - 1e-12) {
        dominated_or_on_frontier = true;
        break;
      }
    }
    EXPECT_TRUE(dominated_or_on_frontier)
        << "point (" << p.l12 << "," << p.l21 << ") undominated but absent";
  }
}

TEST(Tradeoff, SpeedAndReliabilityGenuinelyConflict) {
  // The fastest policy and the most reliable policy must differ — the
  // premise of the paper's trade-off discussion.
  const auto analysis = tradeoff_analysis(conflicted_scenario(), 2);
  const TradeoffPoint& fastest = analysis.frontier.front();
  const TradeoffPoint& most_reliable = analysis.frontier.back();
  EXPECT_GT(most_reliable.mean_execution_time,
            fastest.mean_execution_time);
  EXPECT_GT(most_reliable.reliability, fastest.reliability);
  EXPECT_TRUE(fastest.l12 != most_reliable.l12 ||
              fastest.l21 != most_reliable.l21);
}

TEST(Tradeoff, WeightedCompromiseSpansTheFrontier) {
  const auto analysis = tradeoff_analysis(conflicted_scenario(), 2);
  const TradeoffPoint& speedy = analysis.weighted_compromise(1.0);
  const TradeoffPoint& dependable = analysis.weighted_compromise(0.0);
  EXPECT_NEAR(speedy.mean_execution_time,
              analysis.frontier.front().mean_execution_time, 1e-9);
  EXPECT_NEAR(dependable.reliability, analysis.frontier.back().reliability,
              1e-9);
  // An interior λ gives something between the extremes.
  const TradeoffPoint& mid = analysis.weighted_compromise(0.5);
  EXPECT_GE(mid.mean_execution_time,
            speedy.mean_execution_time - 1e-9);
  EXPECT_LE(mid.mean_execution_time,
            dependable.mean_execution_time + 1e-9);
}

TEST(Tradeoff, TimeBudgetSelection) {
  const auto analysis = tradeoff_analysis(conflicted_scenario(), 2);
  const TradeoffPoint& within_5pct = analysis.best_within_time_budget(1.05);
  const TradeoffPoint& within_50pct = analysis.best_within_time_budget(1.50);
  EXPECT_LE(within_5pct.mean_execution_time,
            1.05 * analysis.frontier.front().mean_execution_time + 1e-9);
  EXPECT_GE(within_50pct.reliability, within_5pct.reliability - 1e-12);
  EXPECT_THROW(static_cast<void>(analysis.best_within_time_budget(0.9)), InvalidArgument);
}

TEST(Tradeoff, RequiresFailureLaws) {
  core::DcsScenario reliable = conflicted_scenario();
  for (auto& s : reliable.servers) s.failure = nullptr;
  EXPECT_THROW(tradeoff_analysis(reliable, 2), InvalidArgument);
}

TEST(Tradeoff, RejectsBadArguments) {
  EXPECT_THROW(tradeoff_analysis(conflicted_scenario(), 0), InvalidArgument);
  const auto analysis = tradeoff_analysis(conflicted_scenario(), 6);
  EXPECT_THROW(static_cast<void>(analysis.weighted_compromise(1.5)), InvalidArgument);
}

}  // namespace
}  // namespace agedtr::policy
