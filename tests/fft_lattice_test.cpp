// FFT correctness (vs. naive DFT) and the LatticeDensity engine invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/lattice_bridge.hpp"
#include "agedtr/dist/pareto.hpp"
#include "agedtr/dist/uniform.hpp"
#include "agedtr/numerics/fft.hpp"
#include "agedtr/numerics/lattice.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::numerics {
namespace {

using Complex = std::complex<double>;

std::vector<Complex> naive_dft(const std::vector<Complex>& in) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * M_PI * static_cast<double>(k * j) /
                           static_cast<double>(n);
      acc += in[j] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

TEST(Fft, MatchesNaiveDft) {
  std::vector<Complex> data(16);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = Complex(std::sin(0.3 * static_cast<double>(i)),
                      std::cos(1.7 * static_cast<double>(i)));
  }
  std::vector<Complex> expected = naive_dft(data);
  fft(data, false);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i] - expected[i]), 0.0, 1e-10) << "bin " << i;
  }
}

TEST(Fft, InverseRoundTrip) {
  std::vector<Complex> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = Complex(static_cast<double>(i % 7), static_cast<double>(i % 3));
  }
  const std::vector<Complex> original = data;
  fft(data, false);
  fft(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i] - original[i]), 0.0, 1e-11);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> data(12);
  EXPECT_THROW(fft(data, false), agedtr::InvalidArgument);
}

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Convolve, MatchesDirectSmall) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 5.0};
  const auto c = convolve(a, b);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_NEAR(c[0], 4.0, 1e-12);
  EXPECT_NEAR(c[1], 13.0, 1e-12);
  EXPECT_NEAR(c[2], 22.0, 1e-12);
  EXPECT_NEAR(c[3], 15.0, 1e-12);
}

TEST(Convolve, FftPathMatchesDirectPath) {
  // Force both paths on the same data: sizes above/below the direct cutoff.
  std::vector<double> a(200), b(200);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = std::sin(0.05 * static_cast<double>(i)) + 1.5;
    b[i] = std::cos(0.08 * static_cast<double>(i)) + 1.2;
  }
  const auto big = convolve(a, b);  // FFT path (200*200 > 4096)
  // Direct evaluation at a few lags.
  for (std::size_t lag : {0u, 57u, 199u, 301u, 398u}) {
    double direct = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const std::size_t j = lag - i;
      if (lag >= i && j < b.size()) direct += a[i] * b[j];
    }
    EXPECT_NEAR(big[lag], direct, 1e-8 * (1.0 + std::fabs(direct)));
  }
}

class LatticeTest : public ::testing::Test {
 protected:
  static constexpr double kDt = 0.01;
  static constexpr std::size_t kN = 4096;
};

TEST_F(LatticeTest, DiscretizeConservesMass) {
  const dist::Exponential exp_law(0.5);
  const LatticeDensity d = dist::discretize(exp_law, kDt, kN);
  EXPECT_NEAR(d.total(), 1.0, 1e-9);
  EXPECT_GT(d.tail(), 0.0);  // exp(−0.5·40.96) tiny but positive
}

TEST_F(LatticeTest, DiscretizeMatchesCdf) {
  const dist::Uniform u(0.0, 10.0);
  const LatticeDensity d = dist::discretize(u, kDt, kN);
  EXPECT_NEAR(d.cdf_at(5.0), 0.5, 1e-3);
  EXPECT_NEAR(d.cdf_at(10.0), 1.0, 1e-3);
  EXPECT_NEAR(d.grid_mean(), 5.0, 1e-2);
}

TEST_F(LatticeTest, ZeroIsConvolutionIdentity) {
  const dist::Exponential law(1.0);
  const LatticeDensity d = dist::discretize(law, kDt, kN);
  const LatticeDensity z = LatticeDensity::zero(kDt, kN);
  const LatticeDensity c = d.convolve(z);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(c.mass(i), d.mass(i), 1e-12);
  }
}

TEST_F(LatticeTest, ConvolutionMeanAdds) {
  const dist::Exponential law(1.0);  // mean 1
  const LatticeDensity d = dist::discretize(law, kDt, kN);
  const LatticeDensity sum = d.convolve(d);
  EXPECT_NEAR(sum.grid_mean() + sum.tail() * kDt * static_cast<double>(kN),
              2.0, 0.02);
  EXPECT_NEAR(sum.total(), 1.0, 1e-9);
}

TEST_F(LatticeTest, ConvolvePowerMatchesRepeated) {
  const dist::Uniform u(0.0, 2.0);
  const LatticeDensity d = dist::discretize(u, kDt, kN);
  const LatticeDensity p3 = d.convolve_power(3);
  const LatticeDensity manual = d.convolve(d).convolve(d);
  for (std::size_t i = 0; i < kN; i += 37) {
    EXPECT_NEAR(p3.mass(i), manual.mass(i), 1e-10);
  }
  EXPECT_NEAR(p3.tail(), manual.tail(), 1e-10);
}

TEST_F(LatticeTest, ConvolvePowerZeroIsPointMass) {
  const dist::Exponential law(1.0);
  const LatticeDensity d = dist::discretize(law, kDt, kN);
  const LatticeDensity p0 = d.convolve_power(0);
  EXPECT_DOUBLE_EQ(p0.mass(0), 1.0);
  EXPECT_DOUBLE_EQ(p0.tail(), 0.0);
}

TEST_F(LatticeTest, GammaSumOfExponentials) {
  // Sum of 4 Exp(1) = Gamma(4, 1): check the CDF at a few quantiles.
  const dist::Exponential law(1.0);
  const LatticeDensity d = dist::discretize(law, kDt, kN);
  const LatticeDensity sum4 = d.convolve_power(4);
  // P(Gamma(4,1) <= 4) = P(4, 4) — regularized incomplete gamma.
  EXPECT_NEAR(sum4.cdf_at(4.0), 0.56652987963, 2e-3);
  EXPECT_NEAR(sum4.cdf_at(8.0), 0.95762, 2e-3);
}

TEST_F(LatticeTest, MaxOfIndependent) {
  // max of two Uniform(0, 1): F(t) = t² on [0, 1]; mean 2/3.
  const dist::Uniform u(0.0, 1.0);
  const LatticeDensity d = dist::discretize(u, kDt, kN);
  const LatticeDensity m = LatticeDensity::max_of(d, d);
  EXPECT_NEAR(m.cdf_at(0.5), 0.25, 5e-3);
  EXPECT_NEAR(m.grid_mean(), 2.0 / 3.0, 1e-2);
}

TEST_F(LatticeTest, TailTracksTruncation) {
  // Heavy Pareto on a short grid: most mass beyond the horizon must land in
  // the tail, never vanish.
  const dist::Pareto p(1.0, 1.5);
  const LatticeDensity d = dist::discretize(p, kDt, 512);  // grid to 5.12
  EXPECT_NEAR(d.total(), 1.0, 1e-9);
  EXPECT_GT(d.tail(), 0.05);  // S(5.12) = (1/5.12)^1.5 ≈ 0.086
  const LatticeDensity sum2 = d.convolve(d);
  EXPECT_NEAR(sum2.total(), 1.0, 1e-9);
  EXPECT_GT(sum2.tail(), d.tail());
}

TEST_F(LatticeTest, ExpectationAgainstFunction) {
  const dist::Exponential law(2.0);
  const LatticeDensity d = dist::discretize(law, kDt, kN);
  // E[e^{−X}] = 2/3 for Exp(2).
  const double v = d.expect([](double t) { return std::exp(-t); });
  EXPECT_NEAR(v, 2.0 / 3.0, 2e-3);
}

TEST_F(LatticeTest, RejectsNegativeMass) {
  EXPECT_THROW(LatticeDensity(0.1, {0.5, -0.2}, 0.0), agedtr::InvalidArgument);
}

TEST_F(LatticeTest, RejectsOverUnitMass) {
  EXPECT_THROW(LatticeDensity(0.1, {0.9, 0.4}, 0.0), agedtr::InvalidArgument);
}

TEST_F(LatticeTest, SuggestHorizonGrowsWithK) {
  const dist::Exponential law(0.5);
  const double h1 = dist::suggest_horizon(law, 1, 1e-6);
  const double h10 = dist::suggest_horizon(law, 10, 1e-6);
  EXPECT_GT(h10, h1);
  EXPECT_GT(h10, 10.0 * law.mean());  // at least the mean of the sum
}

}  // namespace
}  // namespace agedtr::numerics
