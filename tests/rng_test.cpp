// RNG engines: reference behaviour, determinism, stream independence and
// crude uniformity checks.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "agedtr/random/rng.hpp"

namespace agedtr::random {
namespace {

TEST(SplitMix64, KnownFirstOutputsForSeedZero) {
  // Reference values from the published SplitMix64 test vector (seed 0).
  SplitMix64 sm(0);
  EXPECT_EQ(sm(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm(), 0x06C45D188009454FULL);
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a(), b());
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256pp a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256pp a(42), b(43);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Xoshiro256pp rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformMomentsRoughlyCorrect) {
  Xoshiro256pp rng(123);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.next_double();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.003);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  Xoshiro256pp a(99);
  Xoshiro256pp b = a;
  b.jump();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(a());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (seen.count(b())) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Philox, DeterministicForKeyAndStream) {
  Philox4x32 a(5, 9), b(5, 9);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());
}

TEST(Philox, StreamsAreIndependent) {
  Philox4x32 a(5, 0), b(5, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Philox, UniformMean) {
  Philox4x32 rng(2024);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(ReplicationRng, IndependentOfOrdering) {
  // Whatever thread evaluates replication r must see the same stream.
  Rng r5a = make_replication_rng(777, 5);
  Rng r3 = make_replication_rng(777, 3);
  (void)r3();
  Rng r5b = make_replication_rng(777, 5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(r5a(), r5b());
}

TEST(ReplicationRng, NeighbouringRepsDecorrelated) {
  Rng a = make_replication_rng(1, 0);
  Rng b = make_replication_rng(1, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, BitMixingAcrossWords) {
  // Average popcount of outputs should hover around 32.
  Xoshiro256pp rng(31337);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(__builtin_popcountll(rng()));
  }
  EXPECT_NEAR(total / n, 32.0, 0.25);
}

}  // namespace
}  // namespace agedtr::random
