// Extensions beyond the paper's headline machinery: the hyperexponential
// family (+ EM fitting), the full execution-time law (quantiles, variance)
// and the per-server resource-usage analytics.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/core/convolution.hpp"
#include "agedtr/dist/deterministic.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/hyperexponential.hpp"
#include "agedtr/dist/builders.hpp"
#include "agedtr/numerics/quadrature.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr {
namespace {

TEST(HyperExponential, MomentsClosedForm) {
  const dist::HyperExponential h({0.3, 0.7}, {2.0, 0.5});
  EXPECT_NEAR(h.mean(), 0.3 / 2.0 + 0.7 / 0.5, 1e-14);
  const double m2 = 2.0 * 0.3 / 4.0 + 2.0 * 0.7 / 0.25;
  EXPECT_NEAR(h.variance(), m2 - h.mean() * h.mean(), 1e-12);
}

TEST(HyperExponential, PdfIntegratesToOne) {
  const dist::HyperExponential h({0.2, 0.5, 0.3}, {5.0, 1.0, 0.2});
  const double total = numerics::integrate_to_infinity(
                           [&h](double x) { return h.pdf(x); }, 0.0)
                           .value;
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(HyperExponential, ScvAtLeastOne) {
  EXPECT_GE(dist::HyperExponential({0.5, 0.5}, {1.0, 3.0}).scv(), 1.0);
  EXPECT_NEAR(dist::HyperExponential({1.0}, {2.0}).scv(), 1.0, 1e-12);
}

TEST(HyperExponential, TwoMomentFitHitsTargets) {
  for (double scv : {1.0, 2.0, 5.0, 20.0}) {
    const dist::DistPtr h = dist::HyperExponential::with_mean_scv(3.0, scv);
    EXPECT_NEAR(h->mean(), 3.0, 1e-10) << "scv=" << scv;
    EXPECT_NEAR(h->variance() / 9.0, scv, 1e-8) << "scv=" << scv;
  }
  EXPECT_THROW(dist::HyperExponential::with_mean_scv(1.0, 0.5),
               InvalidArgument);
}

TEST(HyperExponential, LaplaceAndTailClosedForms) {
  const dist::HyperExponential h({0.4, 0.6}, {1.0, 4.0});
  // E[e^{-sX}] = Σ w λ/(λ+s).
  EXPECT_NEAR(h.laplace(2.0), 0.4 * (1.0 / 3.0) + 0.6 * (4.0 / 6.0), 1e-14);
  // ∫_t S = Σ w e^{-λt}/λ.
  EXPECT_NEAR(h.integral_sf(1.0),
              0.4 * std::exp(-1.0) / 1.0 + 0.6 * std::exp(-4.0) / 4.0,
              1e-14);
}

TEST(HyperExponential, SamplingMatchesMoments) {
  const dist::DistPtr h = dist::HyperExponential::with_mean_scv(2.0, 4.0);
  random::Rng rng(31);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = h->sample(rng);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(sum2 / n - mean * mean, h->variance(), 0.6);
}

TEST(HyperExponential, EmRecoversTwoPhaseMixture) {
  const dist::HyperExponential truth({0.8, 0.2}, {4.0, 0.25});
  random::Rng rng(17);
  std::vector<double> samples(60000);
  for (double& x : samples) x = truth.sample(rng);
  const dist::DistPtr fit = dist::fit_hyperexponential_em(samples, 2);
  EXPECT_NEAR(fit->mean(), truth.mean(), 0.05 * truth.mean());
  // The fitted CDF must track the truth closely.
  for (double x : {0.1, 0.5, 2.0, 8.0}) {
    EXPECT_NEAR(fit->cdf(x), truth.cdf(x), 0.02) << "x=" << x;
  }
}

TEST(HyperExponential, EmSinglePhaseReducesToExponentialMle) {
  const dist::Exponential truth(0.5);
  random::Rng rng(18);
  std::vector<double> samples(20000);
  for (double& x : samples) x = truth.sample(rng);
  const dist::DistPtr fit = dist::fit_hyperexponential_em(samples, 1);
  EXPECT_NEAR(fit->mean(), 2.0, 0.05);
}

// ---- execution-time law ----------------------------------------------------

core::DcsScenario simple_scenario(dist::ModelFamily family, int m1, int m2) {
  std::vector<core::ServerSpec> servers = {
      {m1, dist::make_model_distribution(family, 2.0), nullptr},
      {m2, dist::make_model_distribution(family, 1.0), nullptr}};
  return core::make_uniform_network_scenario(
      std::move(servers), dist::make_model_distribution(family, 1.0),
      dist::Exponential::with_mean(0.2));
}

TEST(ExecutionTimeLaw, MeanMatchesMeanExecutionTime) {
  const core::DcsScenario s = simple_scenario(dist::ModelFamily::kUniform,
                                              12, 6);
  core::DtrPolicy policy(2);
  policy.set(0, 1, 4);
  const core::ConvolutionSolver solver;
  const auto workloads = core::apply_policy(s, policy);
  const auto law = solver.execution_time_law(workloads);
  EXPECT_NEAR(law.mean, solver.mean_execution_time(workloads),
              1e-9 * (1.0 + law.mean));
}

TEST(ExecutionTimeLaw, CdfMatchesQos) {
  const core::DcsScenario s = simple_scenario(dist::ModelFamily::kPareto1,
                                              10, 5);
  const core::ConvolutionSolver solver;
  const auto workloads = core::apply_policy(s, core::DtrPolicy(2));
  const auto law = solver.execution_time_law(workloads);
  for (double t : {10.0, 20.0, 40.0}) {
    const auto idx = static_cast<std::size_t>(t / law.dt);
    EXPECT_NEAR(law.cdf[idx], solver.qos(workloads, (static_cast<double>(idx) + 1) * law.dt),
                0.02)
        << "t=" << t;
  }
}

TEST(ExecutionTimeLaw, QuantileInvertsCdf) {
  const core::DcsScenario s = simple_scenario(
      dist::ModelFamily::kShiftedExponential, 10, 5);
  const core::ConvolutionSolver solver;
  const auto law =
      solver.execution_time_law(core::apply_policy(s, core::DtrPolicy(2)));
  const double q90 = law.quantile(0.9);
  const auto idx = static_cast<std::size_t>(q90 / law.dt);
  EXPECT_GE(law.cdf[idx], 0.9);
  if (idx > 0) {
    EXPECT_LT(law.cdf[idx - 1], 0.9 + 1e-12);
  }
  EXPECT_GT(law.quantile(0.99), law.quantile(0.5));
}

TEST(ExecutionTimeLaw, VarianceMatchesMonteCarlo) {
  const core::DcsScenario s = simple_scenario(dist::ModelFamily::kUniform,
                                              10, 5);
  core::DtrPolicy policy(2);
  policy.set(0, 1, 3);
  const core::ConvolutionSolver solver;
  const auto law =
      solver.execution_time_law(core::apply_policy(s, policy));
  sim::MonteCarloOptions mc;
  mc.replications = 40'000;
  mc.seed = 5;
  const auto metrics = sim::run_monte_carlo(s, policy, mc);
  // Var[T] from MC: reconstruct from the CI half-width is noisy; instead
  // compare standard deviations within 10%.
  const double mc_std = metrics.mean_completion_time.half_width() *
                        std::sqrt(static_cast<double>(mc.replications)) /
                        1.959963984540054;
  EXPECT_NEAR(std::sqrt(law.variance), mc_std, 0.1 * mc_std);
}

TEST(ExecutionTimeLaw, InfiniteVarianceFlaggedForPareto2) {
  const core::DcsScenario s = simple_scenario(dist::ModelFamily::kPareto2,
                                              8, 4);
  const core::ConvolutionSolver solver;
  const auto law =
      solver.execution_time_law(core::apply_policy(s, core::DtrPolicy(2)));
  EXPECT_TRUE(std::isinf(law.variance));
  EXPECT_TRUE(std::isfinite(law.mean));
}

TEST(ExecutionTimeLaw, RejectsFailingServers) {
  core::DcsScenario s = simple_scenario(dist::ModelFamily::kUniform, 4, 2);
  s.servers[0].failure = dist::Exponential::with_mean(50.0);
  const core::ConvolutionSolver solver;
  EXPECT_THROW(
      solver.execution_time_law(core::apply_policy(s, core::DtrPolicy(2))),
      InvalidArgument);
}

// ---- server usage ----------------------------------------------------------

TEST(ServerUsage, BusyTimesAreWorkContent) {
  const core::DcsScenario s = simple_scenario(dist::ModelFamily::kUniform,
                                              10, 5);
  core::DtrPolicy policy(2);
  policy.set(0, 1, 4);
  const core::ConvolutionSolver solver;
  const auto usage =
      solver.server_usage(core::apply_policy(s, policy));
  ASSERT_EQ(usage.size(), 2u);
  EXPECT_NEAR(usage[0].expected_busy_time, 6 * 2.0, 1e-12);
  EXPECT_NEAR(usage[1].expected_busy_time, (5 + 4) * 1.0, 1e-12);
}

TEST(ServerUsage, IdleGapDetectsLateArrival) {
  // Server 2 drains 1 task (1 s deterministic) then waits for a group that
  // arrives deterministically at t = 10: idle gap = 9.
  std::vector<core::ServerSpec> servers = {
      {2, std::make_shared<dist::Deterministic>(1.0), nullptr},
      {1, std::make_shared<dist::Deterministic>(1.0), nullptr}};
  core::DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), std::make_shared<dist::Deterministic>(10.0),
      std::make_shared<dist::Deterministic>(0.1));
  core::DtrPolicy policy(2);
  policy.set(0, 1, 1);
  const core::ConvolutionSolver solver;
  const auto usage = solver.server_usage(core::apply_policy(s, policy));
  EXPECT_NEAR(usage[1].expected_idle_gap, 9.0, 0.05);
  EXPECT_NEAR(usage[0].expected_idle_gap, 0.0, 1e-12);
}

TEST(ServerUsage, OptimalLowDelayPolicyBalancesBusyness) {
  // The paper's Section III-A observation: under low delay the optimal
  // policy keeps both servers busy for approximately the same time.
  core::DcsScenario s = simple_scenario(dist::ModelFamily::kExponential,
                                        30, 0);
  s.transfer_scaling = core::TransferScaling::kPerTask;
  const core::ConvolutionSolver solver;
  // Balance 2·(30 − L) against L·(z̄ + W̄₂) = 2L: L = 15 keeps both servers
  // finishing around t = 30 (server 2's transfer stream and service
  // pipeline overlap its idle head start).
  core::DtrPolicy policy(2);
  policy.set(0, 1, 15);
  const auto usage = solver.server_usage(core::apply_policy(s, policy));
  EXPECT_NEAR(usage[0].expected_completion, usage[1].expected_completion,
              0.25 * usage[0].expected_completion);
}

}  // namespace
}  // namespace agedtr
