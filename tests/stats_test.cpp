// Histograms, summaries, confidence intervals and KS distance.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/uniform.hpp"
#include "agedtr/random/rng.hpp"
#include "agedtr/stats/histogram.hpp"
#include "agedtr/stats/summary.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::stats {
namespace {

TEST(Histogram, CountsAndNormalization) {
  const std::vector<double> samples = {0.1, 0.2, 0.3, 1.1, 1.2, 1.9};
  const Histogram h(samples, 0.0, 2.0, 2);
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_EQ(h.count(1), 3u);
  // Density integrates to 1: Σ density·width = 1.
  double total = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i) {
    total += h.density(i) * h.bin_width();
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, ClampsOutOfRangeSamples) {
  const std::vector<double> samples = {-5.0, 0.5, 99.0};
  const Histogram h(samples, 0.0, 1.0, 2);
  EXPECT_EQ(h.count(0), 1u);  // −5 clamps into the first bin
  EXPECT_EQ(h.count(1), 2u);  // 0.5 lands in bin 1; 99 clamps into the last
}

TEST(Histogram, BinCenters) {
  const Histogram h({0.0, 1.0}, 0.0, 1.0, 4);
  EXPECT_NEAR(h.bin_center(0), 0.125, 1e-14);
  EXPECT_NEAR(h.bin_center(3), 0.875, 1e-14);
  EXPECT_THROW(static_cast<void>(h.bin_center(4)), InvalidArgument);
}

TEST(Histogram, AutoRangeCoversData) {
  std::vector<double> samples;
  random::Rng rng(11);
  const dist::Uniform u(2.0, 5.0);
  for (int i = 0; i < 500; ++i) samples.push_back(u.sample(rng));
  const Histogram h(samples);
  EXPECT_LE(h.lo(), 2.1);
  EXPECT_GE(h.hi(), 4.9);
  EXPECT_GE(h.bins(), 4u);
}

TEST(Histogram, SquaredErrorDiscriminates) {
  // Data from Uniform(0, 1): the uniform pdf must beat an exponential pdf.
  std::vector<double> samples;
  random::Rng rng(7);
  const dist::Uniform u(0.0, 1.0);
  for (int i = 0; i < 2000; ++i) samples.push_back(u.sample(rng));
  const Histogram h(samples, 0.0, 1.0, 16);
  const dist::Uniform candidate_u(0.0, 1.0);
  const dist::Exponential candidate_e(2.0);
  EXPECT_LT(h.squared_error_vs(candidate_u), h.squared_error_vs(candidate_e));
}

TEST(Summary, MatchesHandComputation) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_NEAR(s.mean, 2.5, 1e-14);
  EXPECT_NEAR(s.variance, 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Summary, SingleSample) {
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
}

TEST(Summary, RejectsEmpty) { EXPECT_THROW(static_cast<void>(summarize({})), InvalidArgument); }

TEST(MeanCi, CoversTrueMeanAtNominalRate) {
  // 200 independent CIs for the mean of Exp(1): ~95% should cover 1.0.
  const dist::Exponential e(1.0);
  int covered = 0;
  for (int trial = 0; trial < 200; ++trial) {
    random::Rng rng(static_cast<std::uint64_t>(trial) + 1000);
    std::vector<double> samples(400);
    for (double& x : samples) x = e.sample(rng);
    const ConfidenceInterval ci = mean_confidence_interval(samples);
    if (ci.lower <= 1.0 && 1.0 <= ci.upper) ++covered;
  }
  EXPECT_GE(covered, 180);  // binomial(200, 0.95): P(<180) ≈ 2e−4
  EXPECT_LE(covered, 200);
}

TEST(MeanCi, WidthShrinksWithSamples) {
  const dist::Exponential e(1.0);
  random::Rng rng(5);
  std::vector<double> small(100), large(10000);
  for (double& x : small) x = e.sample(rng);
  for (double& x : large) x = e.sample(rng);
  EXPECT_GT(mean_confidence_interval(small).half_width(),
            mean_confidence_interval(large).half_width());
}

TEST(ProportionCi, WilsonBasics) {
  const ConfidenceInterval ci = proportion_confidence_interval(60, 100);
  EXPECT_NEAR(ci.center, 0.6, 1e-12);
  EXPECT_GT(ci.lower, 0.49);
  EXPECT_LT(ci.upper, 0.70);
  EXPECT_LT(ci.lower, 0.6);
  EXPECT_GT(ci.upper, 0.6);
}

TEST(ProportionCi, ExtremesStayInUnitInterval) {
  const ConfidenceInterval zero = proportion_confidence_interval(0, 50);
  EXPECT_GE(zero.lower, 0.0);
  EXPECT_GT(zero.upper, 0.0);  // Wilson never collapses to a point at 0
  const ConfidenceInterval one = proportion_confidence_interval(50, 50);
  EXPECT_LE(one.upper, 1.0);
  EXPECT_LT(one.lower, 1.0);
}

TEST(ProportionCi, RejectsInvalid) {
  EXPECT_THROW(static_cast<void>(proportion_confidence_interval(5, 4)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(proportion_confidence_interval(0, 0)), InvalidArgument);
}

TEST(KsDistance, ZeroForPerfectEcdf) {
  // Samples at exact quantiles of Uniform(0,1) give the minimal KS value.
  std::vector<double> samples;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    samples.push_back((i + 0.5) / n);
  }
  const double d = ks_distance(samples, [](double x) { return x; });
  EXPECT_LT(d, 0.006);
}

TEST(KsDistance, DetectsWrongModel) {
  const dist::Exponential e(1.0);
  random::Rng rng(17);
  std::vector<double> samples(2000);
  for (double& x : samples) x = e.sample(rng);
  const double d_right =
      ks_distance(samples, [&e](double x) { return e.cdf(x); });
  const double d_wrong =
      ks_distance(samples, [](double x) { return std::min(x / 3.0, 1.0); });
  EXPECT_LT(d_right, 0.03);
  EXPECT_GT(d_wrong, 0.1);
}

}  // namespace
}  // namespace agedtr::stats
