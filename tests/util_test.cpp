// Unit tests for agedtr_util: strings, tables, CLI parsing, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>

#include "agedtr/util/budget.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/stopwatch.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, TrimRemovesWhitespaceBothSides) {
  EXPECT_EQ(trim("  hello\t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(Strings, FormatDoubleFixedRange) {
  EXPECT_EQ(format_double(1.5, 3), "1.50");
  EXPECT_EQ(format_double(0.0), "0.0000");
  EXPECT_EQ(format_double(140.11, 5), "140.11");
}

TEST(Strings, FormatDoubleSpecials) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_double(std::nan("")), "nan");
}

TEST(Strings, FormatDoubleScientificForExtremes) {
  EXPECT_NE(format_double(1e-9).find('e'), std::string::npos);
  EXPECT_NE(format_double(1e12).find('e'), std::string::npos);
}

TEST(Strings, JoinAndPad) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(pad("x", 3, true), "  x");
  EXPECT_EQ(pad("x", 3, false), "x  ");
  EXPECT_EQ(pad("xyz", 2, true), "xyz");
}

TEST(Table, RowBuilderAndShape) {
  Table t({"a", "b"});
  t.begin_row().cell("x").cell(1.25, 3);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.data()[0][1], "1.25");
}

TEST(Table, RejectsWrongRowSize) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InvalidArgument);
}

TEST(Table, CsvEscaping) {
  Table t({"h"});
  t.add_row({"va\"l,ue"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "h\n\"va\"\"l,ue\"\n");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"x", "1.5"});
  t.add_row({"longer", "22.75"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| longer |"), std::string::npos);
  // Numeric column is right-aligned.
  EXPECT_NE(out.find("|   1.5 |"), std::string::npos);
}

TEST(Cli, ParsesOptionsAndFlags) {
  CliParser cli("test");
  cli.add_option("alpha", "1.5", "tail index");
  cli.add_option("name", "x", "label");
  cli.add_flag("verbose", "extra output");
  const char* argv[] = {"prog", "--alpha=2.5", "--name", "y", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha"), 2.5);
  EXPECT_EQ(cli.get_string("name"), "y");
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, DefaultsApply) {
  CliParser cli("test");
  cli.add_option("n", "100", "count");
  cli.add_flag("fast", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 100);
  EXPECT_FALSE(cli.get_flag("fast"));
}

TEST(Cli, RejectsUnknownOption) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(2, argv), InvalidArgument);
}

TEST(Cli, RejectsBadNumber) {
  CliParser cli("test");
  cli.add_option("n", "1", "");
  const char* argv[] = {"prog", "--n=abc"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(static_cast<void>(cli.get_int("n")), InvalidArgument);
}

TEST(Cli, PositionalArguments) {
  CliParser cli("test");
  const char* argv[] = {"prog", "input.csv", "out.csv"};
  ASSERT_TRUE(cli.parse(3, argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.csv");
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, FuturePropagatesException) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::logic_error("bad"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(ThreadPool, ParallelForCancelsRemainingWorkOnThrow) {
  // A throwing iteration trips the cooperative cancel flag; later
  // iterations in other chunks are skipped, not run to completion.
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.parallel_for(0, 100'000,
                                 [&](std::size_t) {
                                   executed.fetch_add(1);
                                   throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // At most one iteration per chunk can start before the flag is seen.
  EXPECT_LE(executed.load(), 1000);
}

TEST(ThreadPool, ReusableAfterCancelledParallelFor) {
  // Regression: an exception mid-sweep must not wedge the pool (workers
  // stuck, futures unfulfilled, deadlock on the next call).
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW(pool.parallel_for(0, 1000,
                                   [&](std::size_t i) {
                                     if (i % 97 == 3) {
                                       throw std::runtime_error("boom");
                                     }
                                   }),
                 std::runtime_error);
    std::atomic<int> ok{0};
    pool.parallel_for(0, 1000, [&](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 1000);
  }
}

TEST(EvalBudget, UnlimitedByDefault) {
  const EvalBudget budget;
  EXPECT_FALSE(budget.limits_time());
  const BudgetTimer timer(budget);
  EXPECT_FALSE(timer.expired());
  EXPECT_NO_THROW(timer.check("test"));
}

TEST(EvalBudget, ExpiredTimerThrowsBudgetExceeded) {
  EvalBudget budget;
  budget.max_seconds = 1e-9;
  const BudgetTimer timer(budget);
  // A nanosecond is over by the time we get here.
  EXPECT_TRUE(timer.expired());
  EXPECT_THROW(timer.check("test"), BudgetExceeded);
}

TEST(EvalBudget, GenerousDeadlineDoesNotTrip) {
  EvalBudget budget;
  budget.max_seconds = 3600.0;
  const BudgetTimer timer(budget);
  EXPECT_FALSE(timer.expired());
  EXPECT_NO_THROW(timer.check("test"));
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
  sw.reset();
  EXPECT_LT(sw.elapsed_seconds(), 1.0);
}

TEST(Error, RequireThrowsWithContext) {
  try {
    AGEDTR_REQUIRE(1 == 2, "impossible");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("impossible"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace agedtr
