// The aging operator T_a — the paper's central analytical device.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/dist/aged.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/gamma.hpp"
#include "agedtr/dist/pareto.hpp"
#include "agedtr/dist/uniform.hpp"
#include "agedtr/dist/weibull.hpp"
#include "agedtr/numerics/quadrature.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::dist {
namespace {

TEST(Aged, ExponentialIsInvariant) {
  // The memoryless property: aging an exponential returns the same object.
  const DistPtr e = std::make_shared<Exponential>(0.7);
  const DistPtr a = aged(e, 3.0);
  EXPECT_EQ(a.get(), e.get());
}

TEST(Aged, ZeroAgeIsIdentity) {
  const DistPtr p = std::make_shared<Pareto>(1.0, 2.0);
  EXPECT_EQ(aged(p, 0.0).get(), p.get());
}

TEST(Aged, PdfIsConditionalDensity) {
  const DistPtr g = std::make_shared<Gamma>(3.0, 1.0);
  const double a = 2.0;
  const DistPtr ga = aged(g, a);
  const double norm = g->sf(a);
  for (double t : {0.0, 0.5, 2.0, 6.0}) {
    EXPECT_NEAR(ga->pdf(t), g->pdf(t + a) / norm, 1e-12) << "t=" << t;
  }
}

TEST(Aged, PdfIntegratesToOne) {
  const DistPtr w = std::make_shared<Weibull>(2.0, 1.0);
  const DistPtr wa = aged(w, 1.5);
  const double total = numerics::integrate_to_infinity(
                           [&wa](double t) { return wa->pdf(t); }, 0.0)
                           .value;
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(Aged, SurvivalFormula) {
  const DistPtr p = std::make_shared<Pareto>(1.0, 2.5);
  const double a = 3.0;
  const DistPtr pa = aged(p, a);
  for (double t : {0.0, 1.0, 10.0}) {
    EXPECT_NEAR(pa->sf(t), p->sf(t + a) / p->sf(a), 1e-12);
  }
}

TEST(Aged, NestedAgesAdd) {
  const DistPtr g = std::make_shared<Gamma>(2.0, 1.0);
  const DistPtr twice = aged(aged(g, 1.0), 2.0);
  const DistPtr once = aged(g, 3.0);
  for (double t : {0.1, 1.0, 4.0}) {
    EXPECT_NEAR(twice->pdf(t), once->pdf(t), 1e-12);
  }
  // And the nested view collapses structurally to a single Aged node.
  const auto* node = dynamic_cast<const Aged*>(twice.get());
  ASSERT_NE(node, nullptr);
  EXPECT_DOUBLE_EQ(node->age(), 3.0);
  EXPECT_EQ(node->base().get(), g.get());
}

TEST(Aged, HazardUnchangedByAging) {
  // h_{T_a}(t) = h_T(t + a): aging shifts the hazard, never rescales it.
  const DistPtr w = std::make_shared<Weibull>(2.0, 1.0);
  const DistPtr wa = aged(w, 0.7);
  for (double t : {0.1, 1.0, 2.5}) {
    EXPECT_NEAR(wa->hazard(t), w->hazard(t + 0.7), 1e-10);
  }
}

TEST(Aged, MeanIsMeanResidualLife) {
  const DistPtr g = std::make_shared<Gamma>(2.0, 1.5);
  const double a = 2.0;
  const DistPtr ga = aged(g, a);
  const double reference = numerics::integrate_to_infinity(
                               [&ga](double t) { return ga->sf(t); }, 0.0)
                               .value;
  EXPECT_NEAR(ga->mean(), reference, 1e-7);
  // Increasing-hazard laws have decreasing mean residual life.
  EXPECT_LT(ga->mean(), g->mean());
}

TEST(Aged, HeavyTailMeanResidualGrows) {
  // For Pareto the mean residual life *increases* with age — the
  // qualitative reason the exponential approximation misjudges heavy-tailed
  // systems.
  // For Pareto(xm, α) the mean residual life at age a >= xm is a/(α−1):
  // strictly increasing in a (and above the unconditional mean for α < 2).
  const DistPtr p = std::make_shared<Pareto>(1.0, 1.5);
  EXPECT_GT(aged(p, 5.0)->mean(), aged(p, 2.0)->mean());
  EXPECT_GT(aged(p, 2.0)->mean(), p->mean());
  EXPECT_NEAR(aged(p, 2.0)->mean(), 2.0 / 0.5, 1e-9);
}

TEST(Aged, QuantileRoundTrip) {
  const DistPtr g = std::make_shared<Gamma>(3.0, 0.5);
  const DistPtr ga = aged(g, 1.0);
  for (double p : {0.1, 0.5, 0.95}) {
    EXPECT_NEAR(ga->cdf(ga->quantile(p)), p, 1e-8);
  }
}

TEST(Aged, ShiftedSupportShrinks) {
  // Uniform(2, 6) aged by 3 lives on [0, 3].
  const DistPtr u = std::make_shared<Uniform>(2.0, 6.0);
  const DistPtr ua = aged(u, 3.0);
  EXPECT_DOUBLE_EQ(ua->lower_bound(), 0.0);
  EXPECT_DOUBLE_EQ(ua->upper_bound(), 3.0);
  EXPECT_NEAR(ua->cdf(3.0), 1.0, 1e-12);
  // Uniform conditioned on survival is uniform on the remainder.
  EXPECT_NEAR(ua->pdf(1.0), 1.0 / 3.0, 1e-12);
}

TEST(Aged, AgedUniformBeforeSupportStart) {
  // Uniform(2, 6) aged by 1: no mass for another 1 unit.
  const DistPtr u = std::make_shared<Uniform>(2.0, 6.0);
  const DistPtr ua = aged(u, 1.0);
  EXPECT_DOUBLE_EQ(ua->cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ua->lower_bound(), 1.0);
}

TEST(Aged, IntegralSfConsistent) {
  const DistPtr p = std::make_shared<Pareto>(1.0, 2.5);
  const DistPtr pa = aged(p, 2.0);
  for (double t : {0.0, 1.0, 4.0}) {
    const double reference = numerics::integrate_to_infinity(
                                 [&pa](double u) { return pa->sf(u); }, t,
                                 1e-12, 1e-10, 4000)
                                 .value;
    EXPECT_NEAR(pa->integral_sf(t), reference, 1e-6);
  }
}

TEST(Aged, SamplingMatchesConditionalLaw) {
  const DistPtr g = std::make_shared<Gamma>(2.0, 1.0);
  const DistPtr ga = aged(g, 1.0);
  random::Rng rng(4242);
  const int n = 50000;
  double sum = 0.0;
  int below_median = 0;
  const double median = ga->quantile(0.5);
  for (int i = 0; i < n; ++i) {
    const double x = ga->sample(rng);
    sum += x;
    if (x <= median) ++below_median;
  }
  EXPECT_NEAR(sum / n, ga->mean(), 0.03 * ga->mean());
  EXPECT_NEAR(below_median / static_cast<double>(n), 0.5, 0.01);
}

TEST(Aged, RejectsImpossibleAge) {
  const DistPtr u = std::make_shared<Uniform>(0.0, 1.0);
  EXPECT_THROW(aged(u, 2.0), InvalidArgument);  // S(2) = 0
  EXPECT_THROW(aged(u, -1.0), InvalidArgument);
  EXPECT_THROW(aged(nullptr, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace agedtr::dist
