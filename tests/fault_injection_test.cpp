// Fault injection: plan validation/scaling, retransmission semantics,
// common-cause shocks, transient stalls, the event-budget truncation
// contract, and the zero-fault bit-identical regression against the
// fault-free simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/dist/deterministic.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/sim/simulator.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::sim {
namespace {

using core::DcsScenario;
using core::DtrPolicy;
using core::ServerSpec;

dist::DistPtr det(double c) { return std::make_shared<dist::Deterministic>(c); }

DcsScenario deterministic_scenario(int m1, int m2, double w1, double w2,
                                   double z, double y1 = 0.0,
                                   double y2 = 0.0) {
  std::vector<ServerSpec> servers = {
      {m1, det(w1), y1 > 0.0 ? det(y1) : nullptr},
      {m2, det(w2), y2 > 0.0 ? det(y2) : nullptr}};
  return core::make_uniform_network_scenario(std::move(servers), det(z),
                                             det(0.1));
}

DcsScenario stochastic_scenario() {
  std::vector<ServerSpec> servers = {
      {20, dist::Exponential::with_mean(2.0),
       dist::Exponential::with_mean(100.0)},
      {10, dist::Exponential::with_mean(1.0),
       dist::Exponential::with_mean(80.0)}};
  return core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(3.0),
      dist::Exponential::with_mean(0.2));
}

TEST(FaultPlan, DefaultIsNullAndValid) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.is_null());
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, ValidateRejectsMalformedParameters) {
  {
    FaultPlan p;
    p.group_channel.drop_probability = -0.1;
    EXPECT_THROW(p.validate(), InvalidArgument);
  }
  {
    FaultPlan p;
    p.fn_channel.drop_probability = 1.5;
    EXPECT_THROW(p.validate(), InvalidArgument);
  }
  {
    FaultPlan p;
    p.group_channel.drop_probability = 0.5;
    p.group_channel.retransmit_timeout = -1.0;
    EXPECT_THROW(p.validate(), InvalidArgument);
  }
  {
    FaultPlan p;
    p.shock_rate = 0.1;  // shock with no kill probability is meaningless
    EXPECT_THROW(p.validate(), InvalidArgument);
  }
  {
    FaultPlan p;
    p.stall_rate = 0.1;  // stall with no duration law
    EXPECT_THROW(p.validate(), InvalidArgument);
  }
}

TEST(FaultPlan, SimulatorCtorValidatesPlan) {
  const DcsScenario s = deterministic_scenario(1, 1, 1.0, 1.0, 5.0);
  SimulatorOptions opts;
  opts.faults.stall_rate = 0.1;
  EXPECT_THROW(DcsSimulator(s, opts), InvalidArgument);
}

TEST(FaultPlan, ScaleByZeroIsNull) {
  FaultPlan base;
  base.group_channel.drop_probability = 0.5;
  base.fn_channel.drop_probability = 0.2;
  base.shock_rate = 0.01;
  base.shock_kill_probability = 0.3;
  base.stall_rate = 0.02;
  base.stall_duration = det(5.0);
  const FaultPlan zero = scale_fault_plan(base, 0.0);
  EXPECT_TRUE(zero.is_null());
  EXPECT_NO_THROW(zero.validate());
}

TEST(FaultPlan, ScaleClampsProbabilitiesAndKeepsRetryParameters) {
  FaultPlan base;
  base.group_channel.drop_probability = 0.3;
  base.group_channel.retransmit_timeout = 7.0;
  base.group_channel.backoff_factor = 1.5;
  base.group_channel.max_retries = 4;
  base.shock_rate = 0.01;
  base.shock_kill_probability = 0.4;
  const FaultPlan big = scale_fault_plan(base, 10.0);
  EXPECT_DOUBLE_EQ(big.group_channel.drop_probability, 1.0);
  // Severity is not scaled — only frequency — so intensity acts linearly.
  EXPECT_DOUBLE_EQ(big.shock_kill_probability, 0.4);
  EXPECT_DOUBLE_EQ(big.shock_rate, 0.1);
  EXPECT_DOUBLE_EQ(big.group_channel.retransmit_timeout, 7.0);
  EXPECT_DOUBLE_EQ(big.group_channel.backoff_factor, 1.5);
  EXPECT_EQ(big.group_channel.max_retries, 4);
  const FaultPlan half = scale_fault_plan(base, 0.5);
  EXPECT_DOUBLE_EQ(half.group_channel.drop_probability, 0.15);
  EXPECT_DOUBLE_EQ(half.shock_rate, 0.005);
}

// --- The zero-fault regression: a null plan must be byte-for-byte the ----
// --- fault-free simulator (same RNG stream, same events, same result). ---

TEST(FaultInjection, NullPlanIsBitIdenticalToFaultFreeRun) {
  const DcsScenario s = stochastic_scenario();
  DtrPolicy policy(2);
  policy.set(0, 1, 5);

  const DcsSimulator plain(s);
  // Non-trivial retransmission parameters, but inactive channels and zero
  // rates: the hooks must neither draw from the RNG nor schedule events.
  SimulatorOptions opts;
  opts.faults.group_channel.retransmit_timeout = 123.0;
  opts.faults.group_channel.max_retries = 9;
  opts.faults.fn_channel.backoff_factor = 4.0;
  ASSERT_TRUE(opts.faults.is_null());
  const DcsSimulator nulled(s, opts);

  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    random::Rng rng1(seed), rng2(seed);
    const SimResult a = plain.run(policy, rng1);
    const SimResult b = nulled.run(policy, rng2);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.completion_time, b.completion_time);  // bitwise, no NEAR
    EXPECT_EQ(a.events_processed, b.events_processed);
    EXPECT_EQ(a.busy_time, b.busy_time);
    EXPECT_EQ(a.tasks_served, b.tasks_served);
    // And the streams advanced identically: the next draw agrees.
    EXPECT_EQ(rng1.next_double(), rng2.next_double());
  }
}

TEST(FaultInjection, NullPlanMonteCarloMetricsAreBitIdentical) {
  const DcsScenario s = stochastic_scenario();
  DtrPolicy policy(2);
  policy.set(0, 1, 5);

  MonteCarloOptions plain;
  plain.replications = 500;
  plain.seed = 77;
  MonteCarloOptions nulled = plain;
  nulled.simulator.faults.group_channel.retransmit_timeout = 55.0;
  ASSERT_TRUE(nulled.simulator.faults.is_null());

  const MonteCarloMetrics a = run_monte_carlo(s, policy, plain);
  const MonteCarloMetrics b = run_monte_carlo(s, policy, nulled);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.reliability.center, b.reliability.center);
  EXPECT_EQ(a.mean_completion_time.center, b.mean_completion_time.center);
  EXPECT_EQ(b.fault_totals.group_retransmissions, 0u);
  EXPECT_EQ(b.fault_totals.shocks, 0u);
  EXPECT_EQ(b.fault_totals.stalls, 0u);
}

// --- Retransmission semantics. ------------------------------------------

TEST(FaultInjection, CertainGroupDropStrandsTasksAfterRetryBudget) {
  const DcsScenario s = deterministic_scenario(3, 2, 2.0, 1.0, 5.0);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  SimulatorOptions opts;
  opts.faults.group_channel.drop_probability = 1.0;
  opts.faults.group_channel.max_retries = 2;
  const DcsSimulator sim(s, opts);
  random::Rng rng(1);
  const SimResult r = sim.run(policy, rng);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(std::isinf(r.completion_time));
  EXPECT_EQ(r.faults.tasks_lost_in_network, 2);
  // Retransmissions actually sent: the retry budget, not the attempts.
  EXPECT_EQ(r.faults.group_retransmissions, 2u);
}

TEST(FaultInjection, CertainFnDropIsSilentAndHarmless) {
  // Same setup as Simulator.FnDeliveryObservableWhenWorkloadSurvives, but
  // the FN channel drops everything: the workload still completes, just
  // without the notice.
  const DcsScenario s = deterministic_scenario(4, 0, 1.0, 1.0, 5.0, 0.0, 2.0);
  SimulatorOptions opts;
  opts.faults.fn_channel.drop_probability = 1.0;
  opts.faults.fn_channel.max_retries = 3;
  const DcsSimulator sim(s, opts);
  random::Rng rng(1);
  const SimResult r = sim.run(DtrPolicy(2), rng);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.fn_deliveries.empty());
  EXPECT_EQ(r.faults.fn_packets_dropped, 1u);
  EXPECT_EQ(r.faults.fn_retransmissions, 3u);
}

TEST(FaultInjection, LossyChannelProducesAllThreeOutcomes) {
  // drop = 0.5 with one retry and a huge RTO separates the outcomes by
  // completion time: clean delivery completes early, a retransmitted
  // delivery completes after the RTO, exhaustion loses the workload.
  const DcsScenario s = deterministic_scenario(3, 2, 2.0, 1.0, 5.0);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  SimulatorOptions opts;
  opts.faults.group_channel.drop_probability = 0.5;
  opts.faults.group_channel.retransmit_timeout = 100.0;
  opts.faults.group_channel.max_retries = 1;
  const DcsSimulator sim(s, opts);

  int clean = 0, retried = 0, lost = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    random::Rng rng(seed);
    const SimResult r = sim.run(policy, rng);
    if (!r.completed) {
      ++lost;
      EXPECT_EQ(r.faults.tasks_lost_in_network, 2);
    } else if (r.faults.group_retransmissions == 1) {
      ++retried;
      // Delivery waited out the 100 s RTO before the 5 s transfer.
      EXPECT_GE(r.completion_time, 100.0);
    } else {
      ++clean;
      EXPECT_NEAR(r.completion_time, 7.0, 1e-12);  // the fault-free answer
    }
  }
  EXPECT_GT(clean, 0);
  EXPECT_GT(retried, 0);
  EXPECT_GT(lost, 0);
  EXPECT_EQ(clean + retried + lost, 200);
}

// --- Common-cause shocks (correlated failures, violating A2). -----------

TEST(FaultInjection, LethalShockKillsEveryServerTogether) {
  // Service takes 200 s per task; the first shock (mean 1 s) strikes long
  // before any completion and kills both servers at the same instant.
  const DcsScenario s = deterministic_scenario(3, 2, 200.0, 200.0, 5.0);
  SimulatorOptions opts;
  opts.faults.shock_rate = 1.0;
  opts.faults.shock_kill_probability = 1.0;
  const DcsSimulator sim(s, opts);
  random::Rng rng(7);
  const SimResult r = sim.run(DtrPolicy(2), rng);
  EXPECT_FALSE(r.completed);
  EXPECT_GE(r.faults.shocks, 1u);
  EXPECT_EQ(r.faults.shock_failures, 2u);
  // Correlated: both failure times equal — impossible under A2's
  // independent clocks with continuous laws.
  EXPECT_EQ(r.failure_time[0], r.failure_time[1]);
  EXPECT_TRUE(std::isfinite(r.failure_time[0]));
}

TEST(FaultInjection, GentleShocksDegradeReliability) {
  const DcsScenario s = stochastic_scenario();
  DtrPolicy policy(2);

  MonteCarloOptions clean;
  clean.replications = 800;
  clean.seed = 11;
  MonteCarloOptions shocked = clean;
  shocked.simulator.faults.shock_rate = 1.0 / 50.0;
  shocked.simulator.faults.shock_kill_probability = 0.5;

  const double r_clean = run_monte_carlo(s, policy, clean).reliability.center;
  const MonteCarloMetrics m = run_monte_carlo(s, policy, shocked);
  EXPECT_LT(m.reliability.center, r_clean);
  EXPECT_GT(m.fault_totals.shock_failures, 0u);
}

// --- Transient stalls (non-crash interruption of service). --------------

TEST(FaultInjection, StallsPauseServiceWithoutLosingWork) {
  // One server, one task, deterministic 10 s service. Every stall that
  // lands before completion pauses the in-flight service; the task still
  // completes, shifted by exactly the injected stall time, and the busy
  // time excludes the pauses.
  DcsScenario s;
  s.servers = {{1, det(10.0), nullptr}};
  s.transfer = {{nullptr}};
  SimulatorOptions opts;
  opts.faults.stall_rate = 0.2;
  opts.faults.stall_duration = det(3.0);
  const DcsSimulator sim(s, opts);
  bool saw_stall = false;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    random::Rng rng(seed);
    const SimResult r = sim.run(DtrPolicy(1), rng);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.tasks_served[0], 1);
    EXPECT_NEAR(r.completion_time, 10.0 + r.faults.total_stall_time, 1e-9);
    EXPECT_NEAR(r.busy_time[0], 10.0, 1e-9);
    saw_stall = saw_stall || r.faults.stalls > 0;
  }
  EXPECT_TRUE(saw_stall);  // rate 0.2 over >= 10 s: virtually certain
}

TEST(FaultInjection, OverlappingStallsMergeInsteadOfStacking) {
  // Without overlap every stall of the deterministic 0.4 s duration
  // contributes exactly 0.4 s; a stall landing inside an active stall
  // contributes strictly less. Stacking would always give 0.4 x stalls.
  DcsScenario s;
  s.servers = {{1, det(4.0), nullptr}};
  s.transfer = {{nullptr}};
  SimulatorOptions opts;
  opts.faults.stall_rate = 1.0;
  opts.faults.stall_duration = det(0.4);
  const DcsSimulator sim(s, opts);
  bool saw_merge = false;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    random::Rng rng(seed);
    const SimResult r = sim.run(DtrPolicy(1), rng);
    ASSERT_TRUE(r.completed);
    EXPECT_NEAR(r.completion_time, 4.0 + r.faults.total_stall_time, 1e-9);
    EXPECT_LE(r.faults.total_stall_time,
              0.4 * static_cast<double>(r.faults.stalls) + 1e-9);
    if (r.faults.stalls >= 2 &&
        r.faults.total_stall_time <
            0.4 * static_cast<double>(r.faults.stalls) - 1e-9) {
      saw_merge = true;
    }
  }
  EXPECT_TRUE(saw_merge);  // P(two stalls within 0.4 s) ~ 1 over 40 runs
}

// --- Monte-Carlo aggregation of fault runs. -----------------------------

TEST(FaultInjection, MonteCarloCountsTruncatedRunsSeparately) {
  // Failure-free, so no run can end early by losing its workload: all 30
  // tasks need far more than 5 events and every replication truncates.
  std::vector<ServerSpec> servers = {
      {20, dist::Exponential::with_mean(2.0), nullptr},
      {10, dist::Exponential::with_mean(1.0), nullptr}};
  const DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(3.0),
      dist::Exponential::with_mean(0.2));
  MonteCarloOptions mc;
  mc.replications = 100;
  mc.simulator.max_events = 5;  // every run truncates
  const MonteCarloMetrics m = run_monte_carlo(s, DtrPolicy(2), mc);
  EXPECT_EQ(m.truncated, 100u);
  EXPECT_EQ(m.completed, 0u);
  EXPECT_FALSE(m.all_completed);
  // Truncated runs count against reliability (they never finished).
  EXPECT_LT(m.reliability.center, 0.1);
}

TEST(FaultInjection, MonteCarloAggregatesFaultTotals) {
  const DcsScenario s = stochastic_scenario();
  DtrPolicy policy(2);
  policy.set(0, 1, 5);
  MonteCarloOptions mc;
  mc.replications = 300;
  mc.simulator.faults.group_channel.drop_probability = 0.3;
  mc.simulator.faults.group_channel.retransmit_timeout = 0.5;
  mc.simulator.faults.stall_rate = 1.0 / 20.0;
  mc.simulator.faults.stall_duration = dist::Exponential::with_mean(2.0);
  const MonteCarloMetrics m = run_monte_carlo(s, policy, mc);
  // With 300 draws at p = 0.3 the expectation is ~90 first-drop events;
  // zero would mean the counters are not wired through.
  EXPECT_GT(m.fault_totals.group_retransmissions, 0u);
  EXPECT_GT(m.fault_totals.stalls, 0u);
  EXPECT_GT(m.fault_totals.total_stall_time, 0.0);
}

}  // namespace
}  // namespace agedtr::sim
