// Root finding and derivative-free minimization.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/numerics/optimize.hpp"
#include "agedtr/numerics/roots.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::numerics {
namespace {

TEST(BrentRoot, FindsSimpleRoot) {
  const double r =
      brent_root([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-12);
}

TEST(BrentRoot, Transcendental) {
  const double r =
      brent_root([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_NEAR(r, 0.7390851332151607, 1e-12);
}

TEST(BrentRoot, RootAtBoundary) {
  EXPECT_DOUBLE_EQ(brent_root([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(brent_root([](double x) { return x - 1.0; }, 0.0, 1.0),
                   1.0);
}

TEST(BrentRoot, RejectsUnbracketed) {
  EXPECT_THROW(static_cast<void>(brent_root([](double x) { return x * x + 1.0; }, -1.0, 1.0)),
               InvalidArgument);
}

TEST(BrentRoot, SteepFunction) {
  const double r = brent_root(
      [](double x) { return std::expm1(50.0 * (x - 0.73)); }, 0.0, 1.0);
  EXPECT_NEAR(r, 0.73, 1e-10);
}

TEST(ExpandBracket, FindsSignChange) {
  const auto b =
      expand_bracket([](double x) { return x - 100.0; }, 0.0, 1.0);
  EXPECT_LE((b.a - 100.0) * (b.b - 100.0), 0.0);
}

TEST(ExpandBracket, ThrowsWhenNoRoot) {
  EXPECT_THROW(static_cast<void>(expand_bracket([](double) { return 1.0; }, 0.0, 1.0, 10)),
      ConvergenceError);
}

TEST(MinimizeScalar, Quadratic) {
  const auto r = minimize_scalar(
      [](double x) { return (x - 1.3) * (x - 1.3) + 2.0; }, -10.0, 10.0);
  EXPECT_NEAR(r.x, 1.3, 1e-7);
  EXPECT_NEAR(r.value, 2.0, 1e-12);
}

TEST(MinimizeScalar, AsymmetricUnimodal) {
  // f(x) = x − ln x on (0, ∞): minimum at x = 1.
  const auto r = minimize_scalar(
      [](double x) { return x - std::log(x); }, 0.01, 10.0);
  EXPECT_NEAR(r.x, 1.0, 1e-6);
}

TEST(MinimizeScalar, MinimumNearBoundary) {
  const auto r =
      minimize_scalar([](double x) { return x; }, 0.0, 1.0);
  EXPECT_NEAR(r.x, 0.0, 1e-5);
}

TEST(NelderMead, Rosenbrock2d) {
  const auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  const auto r = nelder_mead(f, {-1.2, 1.0}, {}, 1e-14, 5000);
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], 1.0, 1e-4);
}

TEST(NelderMead, SphereConverges) {
  const auto f = [](const std::vector<double>& x) {
    double s = 0.0;
    for (double v : x) s += (v - 2.0) * (v - 2.0);
    return s;
  };
  const auto r = nelder_mead(f, {0.0, 0.0, 0.0});
  EXPECT_TRUE(r.converged);
  for (double v : r.x) EXPECT_NEAR(v, 2.0, 1e-4);
}

TEST(NelderMead, OneDimension) {
  const auto r = nelder_mead(
      [](const std::vector<double>& x) { return std::cosh(x[0] - 0.4); },
      {5.0});
  EXPECT_NEAR(r.x[0], 0.4, 1e-4);
}

TEST(NelderMead, RejectsEmptyStart) {
  EXPECT_THROW(
      nelder_mead([](const std::vector<double>&) { return 0.0; }, {}),
      InvalidArgument);
}

}  // namespace
}  // namespace agedtr::numerics
