// Rolling-horizon simulation and snapshot re-seeding.
//
// The load-bearing contracts, in order: (1) run_rolling with no epochs is
// bit-identical to run() — including the RNG stream position — across laws,
// failures, faults, and replication; (2) an epoch at t = 0 is the one-shot
// run (the initial decision already IS the epoch-0 decision); (3) a
// re-decision that moves nothing leaves the trajectory untouched; (4) the
// age-0 re-seed is an exact round trip through core::reseed_scenario; and
// (5) mid-run reallocations conserve tasks and honor the
// only-singleton-unmoved-tail rule.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "agedtr/core/replication.hpp"
#include "agedtr/core/reseed.hpp"
#include "agedtr/dist/aged.hpp"
#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/deterministic.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/sim/simulator.hpp"

namespace agedtr::sim {
namespace {

using core::DcsScenario;
using core::DtrPolicy;
using core::ServerSpec;
using core::SystemState;
using dist::ModelFamily;

dist::DistPtr det(double c) { return std::make_shared<dist::Deterministic>(c); }

/// Small stochastic two-server system with non-trivial transfers.
DcsScenario stochastic_scenario(ModelFamily family, bool failures) {
  std::vector<ServerSpec> servers = {
      {8, dist::make_model_distribution(family, 2.0),
       failures ? dist::make_model_distribution(ModelFamily::kUniform, 40.0)
                : nullptr},
      {4, dist::make_model_distribution(family, 1.0),
       failures ? dist::Exponential::with_mean(60.0) : nullptr}};
  return core::make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(ModelFamily::kPareto1, 1.5),
      dist::Exponential::with_mean(0.2));
}

/// Bitwise comparison of everything a SimResult reports deterministically.
void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.completion_time, b.completion_time);  // exact, not approximate
  EXPECT_EQ(a.tasks_lost, b.tasks_lost);
  EXPECT_EQ(a.busy_time, b.busy_time);
  EXPECT_EQ(a.tasks_served, b.tasks_served);
  EXPECT_EQ(a.failure_time, b.failure_time);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.replicas_cancelled, b.replicas_cancelled);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.rolling.tasks_reallocated, b.rolling.tasks_reallocated);
  EXPECT_EQ(a.rolling.moves_clamped, b.rolling.moves_clamped);
}

TEST(RollingSim, EmptyEpochsBitIdenticalToRun) {
  for (const ModelFamily family :
       {ModelFamily::kExponential, ModelFamily::kPareto1,
        ModelFamily::kUniform}) {
    for (const bool failures : {false, true}) {
      const DcsScenario s = stochastic_scenario(family, failures);
      DtrPolicy policy(2);
      policy.set(0, 1, 3);
      const DcsSimulator sim(s);
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        SCOPED_TRACE("family=" + dist::model_family_name(family) +
                     " failures=" + std::to_string(failures) +
                     " seed=" + std::to_string(seed));
        random::Rng rng_a(seed);
        random::Rng rng_b(seed);
        const SimResult one_shot = sim.run(policy, rng_a);
        const SimResult rolling = sim.run_rolling(policy, {}, rng_b);
        expect_identical(one_shot, rolling);
        EXPECT_EQ(rolling.rolling.epochs_fired, 0u);
        // The RNG stream position must match too: flight bookkeeping is
        // observation-only and never draws.
        EXPECT_EQ(rng_a.next_double(), rng_b.next_double());
      }
    }
  }
}

TEST(RollingSim, EmptyEpochsBitIdenticalUnderFaultsAndReplication) {
  const DcsScenario s = stochastic_scenario(ModelFamily::kPareto1, true);
  DtrPolicy policy(2);
  policy.set(0, 1, 3);
  SimulatorOptions options;
  options.faults.group_channel.drop_probability = 0.1;
  options.faults.group_channel.max_retries = 2;
  options.faults.fn_channel.drop_probability = 0.2;
  options.replication = core::make_uniform_replication(s, policy, 2);
  const DcsSimulator sim(s, options);
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    random::Rng rng_a(seed);
    random::Rng rng_b(seed);
    const SimResult one_shot = sim.run(policy, rng_a);
    const SimResult rolling = sim.run_rolling(policy, {}, rng_b);
    expect_identical(one_shot, rolling);
    EXPECT_EQ(rng_a.next_double(), rng_b.next_double());
  }
}

TEST(RollingSim, EpochAtZeroIsTheOneShotRun) {
  const DcsScenario s = stochastic_scenario(ModelFamily::kPareto1, true);
  DtrPolicy policy(2);
  policy.set(0, 1, 3);
  const DcsSimulator sim(s);
  RollingOptions rolling;
  rolling.epochs = {0.0};
  rolling.redecide = [](const SystemState&) -> DtrPolicy {
    ADD_FAILURE() << "an epoch at t = 0 must not re-decide";
    return DtrPolicy(2);
  };
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    random::Rng rng_a(seed);
    random::Rng rng_b(seed);
    const SimResult one_shot = sim.run(policy, rng_a);
    const SimResult rolled = sim.run_rolling(policy, rolling, rng_b);
    expect_identical(one_shot, rolled);
    EXPECT_EQ(rolled.rolling.epochs_fired, 0u);
    EXPECT_EQ(rng_a.next_double(), rng_b.next_double());
  }
}

TEST(RollingSim, ZeroPolicyRedecisionLeavesTrajectoryUntouched) {
  const DcsScenario s = stochastic_scenario(ModelFamily::kExponential, false);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  const DcsSimulator sim(s);
  RollingOptions rolling;
  rolling.epochs = {1.5, 4.0};
  std::size_t invocations = 0;
  rolling.redecide = [&invocations](const SystemState& observed) {
    ++invocations;
    return DtrPolicy(observed.size());  // decide to move nothing
  };
  random::Rng rng_a(7);
  random::Rng rng_b(7);
  const SimResult one_shot = sim.run(policy, rng_a);
  const SimResult rolled = sim.run_rolling(policy, rolling, rng_b);
  EXPECT_EQ(one_shot.completed, rolled.completed);
  EXPECT_EQ(one_shot.completion_time, rolled.completion_time);  // exact
  EXPECT_EQ(one_shot.tasks_lost, rolled.tasks_lost);
  EXPECT_EQ(one_shot.busy_time, rolled.busy_time);
  EXPECT_EQ(one_shot.tasks_served, rolled.tasks_served);
  EXPECT_EQ(one_shot.failure_time, rolled.failure_time);
  EXPECT_EQ(one_shot.truncated, rolled.truncated);
  EXPECT_EQ(rolled.rolling.tasks_reallocated, 0);
  EXPECT_EQ(rolled.rolling.moves_clamped, 0);
  // The epoch markers themselves are events; nothing else may differ.
  EXPECT_EQ(rolled.events_processed,
            one_shot.events_processed + rolled.rolling.epochs_fired);
  EXPECT_EQ(rolled.rolling.epochs_fired, invocations);
  EXPECT_GE(invocations, 1u);
  EXPECT_EQ(rng_a.next_double(), rng_b.next_double());
}

TEST(RollingSim, MidRunReallocationMovesAndConservesTasks) {
  // Deterministic: server 1 needs 2 s per task for 6 tasks, server 2 is
  // fast and idle after t = 1. A re-decision at t = 3 offloads 2 queued
  // tasks; they arrive at t = 4 and finish by t = 6, beating the one-shot
  // completion at t = 12.
  std::vector<ServerSpec> servers = {{6, det(2.0), nullptr},
                                     {1, det(1.0), nullptr}};
  const DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), det(1.0), det(0.1));
  const DcsSimulator sim(s);
  RollingOptions rolling;
  rolling.epochs = {3.0};
  rolling.redecide = [](const SystemState& observed) {
    EXPECT_EQ(observed.tasks[0], 5);  // one served by t = 3, one in service
    EXPECT_EQ(observed.tasks[1], 0);
    DtrPolicy fresh(2);
    fresh.set(0, 1, 2);
    return fresh;
  };
  random::Rng rng(1);
  const SimResult r = sim.run_rolling(DtrPolicy(2), rolling, rng);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.rolling.epochs_fired, 1u);
  EXPECT_EQ(r.rolling.tasks_reallocated, 2);
  EXPECT_EQ(r.rolling.moves_clamped, 0);
  EXPECT_EQ(r.tasks_served[0] + r.tasks_served[1], 7);
  EXPECT_EQ(r.tasks_served[1], 3);
  // 4 tasks remain at server 1 after the move: done at t = 2·4 + 2·2... no —
  // server 1 serves 1 task by t = 2 and is mid-task until 4; then 3 more:
  // 2 + 2 + 2·3 = overlap-free timeline ends at t = 10 there, t = 6 at
  // server 2; the makespan must beat the 12 s one-shot.
  EXPECT_LT(r.completion_time, 12.0);
}

TEST(RollingSim, ClampsMovesThePlanCannotHonor) {
  // The re-decision pledges 10 tasks but only 3 movable ones exist (one of
  // the 5 remaining is pinned in service).
  std::vector<ServerSpec> servers = {{5, det(2.0), nullptr},
                                     {1, det(1.0), nullptr}};
  const DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), det(1.0), det(0.1));
  const DcsSimulator sim(s);
  RollingOptions rolling;
  rolling.epochs = {1.0};
  rolling.redecide = [](const SystemState&) {
    DtrPolicy fresh(2);
    fresh.set(0, 1, 10);
    return fresh;
  };
  random::Rng rng(1);
  const SimResult r = sim.run_rolling(DtrPolicy(2), rolling, rng);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.rolling.tasks_reallocated, 4);  // queue minus the in-service task
  EXPECT_EQ(r.rolling.moves_clamped, 6);
  EXPECT_EQ(r.tasks_served[0] + r.tasks_served[1], 6);
}

TEST(RollingSim, FinalStateSnapshotIsConsistent) {
  const DcsScenario s = stochastic_scenario(ModelFamily::kExponential, false);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  SimulatorOptions options;
  options.capture_final_state = true;
  const DcsSimulator sim(s, options);
  random::Rng rng(3);
  const SimResult r = sim.run(policy, rng);
  ASSERT_TRUE(r.completed);
  ASSERT_TRUE(r.final_state.has_value());
  const SystemState& fs = *r.final_state;
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_TRUE(fs.workload_done());
  EXPECT_EQ(fs.tasks[0], 0);
  EXPECT_EQ(fs.tasks[1], 0);
  EXPECT_TRUE(fs.groups.empty());
  EXPECT_NE(fs.up[0], 0);
  EXPECT_NE(fs.up[1], 0);
}

TEST(RollingSim, RunRollingValidatesItsEpochSchedule) {
  const DcsScenario s = stochastic_scenario(ModelFamily::kExponential, false);
  const DcsSimulator sim(s);
  const auto noop = [](const SystemState& observed) {
    return DtrPolicy(observed.size());
  };
  random::Rng rng(1);
  RollingOptions bad;
  bad.redecide = noop;
  bad.epochs = {2.0, 1.0};  // descending
  EXPECT_THROW((void)sim.run_rolling(DtrPolicy(2), bad, rng),
               std::invalid_argument);
  bad.epochs = {-1.0};
  EXPECT_THROW((void)sim.run_rolling(DtrPolicy(2), bad, rng),
               std::invalid_argument);
  RollingOptions no_callback;
  no_callback.epochs = {1.0};  // positive epoch but nothing to call
  EXPECT_THROW((void)sim.run_rolling(DtrPolicy(2), no_callback, rng),
               std::invalid_argument);
}

// --- Snapshot → scenario re-seeding. --------------------------------------

TEST(RollingReseed, AgeZeroIsAnExactRoundTrip) {
  const DcsScenario base = stochastic_scenario(ModelFamily::kPareto1, true);
  const SystemState fresh = SystemState::initial(base, DtrPolicy(2));
  const core::ReseededScenario r = core::reseed_scenario(base, fresh);
  ASSERT_EQ(r.scenario.size(), 2u);
  EXPECT_EQ(r.full_size, 2u);
  EXPECT_EQ(r.survivors, (std::vector<std::size_t>{0, 1}));
  for (std::size_t j = 0; j < 2; ++j) {
    SCOPED_TRACE(j);
    EXPECT_EQ(r.scenario.servers[j].initial_tasks,
              base.servers[j].initial_tasks);
    // dist::aged returns the base law unchanged at age 0, so the round trip
    // is exact — same distribution objects, not approximations.
    EXPECT_EQ(r.scenario.servers[j].service.get(),
              base.servers[j].service.get());
    EXPECT_EQ(r.scenario.servers[j].failure.get(),
              base.servers[j].failure.get());
    EXPECT_NEAR(r.scenario.servers[j].failure->mean(),
                base.servers[j].failure->mean(),
                1e-12 * base.servers[j].failure->mean());
  }
  // expand() of a compact policy is the identity mapping here.
  DtrPolicy compact(2);
  compact.set(0, 1, 4);
  const DtrPolicy full = r.expand(compact);
  EXPECT_EQ(full.size(), 2u);
  EXPECT_EQ(full(0, 1), 4);
  EXPECT_EQ(full(1, 0), 0);
}

TEST(RollingReseed, CompactsDeadServersAndCreditsInTransit) {
  std::vector<ServerSpec> servers = {
      {5, det(2.0), dist::make_model_distribution(ModelFamily::kUniform, 40.0)},
      {3, det(1.0), dist::Exponential::with_mean(60.0)},
      {2, det(1.5),
       dist::make_model_distribution(ModelFamily::kUniform, 80.0)}};
  const DcsScenario base = core::make_uniform_network_scenario(
      std::move(servers), det(1.0), det(0.1));

  SystemState observed = SystemState::initial(base, DtrPolicy(3));
  observed.up[1] = 0;  // server 2 (index 1) failed
  observed.tasks = {5, 3, 2};
  observed.failure_age = {10.0, 0.0, 10.0};
  core::TransitGroup group;
  group.from = 0;
  group.to = 2;
  group.tasks = 4;
  group.transfer = det(1.0);
  group.age = 0.5;
  observed.groups.push_back(group);

  const core::ReseededScenario r = core::reseed_scenario(base, observed);
  ASSERT_EQ(r.scenario.size(), 2u);
  EXPECT_EQ(r.full_size, 3u);
  EXPECT_EQ(r.survivors, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(r.scenario.servers[0].initial_tasks, 5);
  EXPECT_EQ(r.scenario.servers[1].initial_tasks, 2 + 4);  // credited group

  // Failure laws are the aged views: mean == residual_mean(base law, age).
  for (std::size_t c = 0; c < 2; ++c) {
    const std::size_t j = r.survivors[c];
    SCOPED_TRACE(j);
    const double expected =
        dist::residual_mean(base.servers[j].failure, observed.failure_age[j]);
    EXPECT_NEAR(r.scenario.servers[c].failure->mean(), expected,
                1e-9 * expected);
  }

  // A compact decision maps back through the survivor indices.
  DtrPolicy compact(2);
  compact.set(0, 1, 3);
  const DtrPolicy full = r.expand(compact);
  ASSERT_EQ(full.size(), 3u);
  EXPECT_EQ(full(0, 2), 3);
  EXPECT_EQ(full(0, 1), 0);
  EXPECT_EQ(full(1, 2), 0);
}

}  // namespace
}  // namespace agedtr::sim
