// service::* — the agedtrd daemon stack: the JSON value, the frame
// protocol, the request trust boundary, the fingerprints, and the Daemon's
// robustness contract (admission shedding, deadline propagation, poison
// fast-reject, graceful degradation, journal replay across restarts,
// exactly-once replies through shutdown).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "agedtr/policy/evaluation_engine.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/service/daemon.hpp"
#include "agedtr/service/json.hpp"
#include "agedtr/service/protocol.hpp"
#include "agedtr/service/request.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::service {
namespace {

std::string temp_path(const std::string& name) {
  const testing::TestInfo* info =
      testing::UnitTest::GetInstance()->current_test_info();
  return testing::TempDir() + "agedtr_service_" + info->name() + "_" + name;
}

/// The JSON text of a tiny 2-server request; tests tweak fields by
/// re-dumping the parsed document.
Json base_request(const std::string& id, const std::string& kind) {
  Json scenario = Json::object();
  Json servers = Json::array();
  Json s1 = Json::object();
  s1.set("tasks", Json::number(4));
  s1.set("service_model", Json::string("uniform"));
  s1.set("service_mean", Json::number(2.0));
  servers.push_back(std::move(s1));
  Json s2 = Json::object();
  s2.set("tasks", Json::number(2));
  s2.set("service_model", Json::string("uniform"));
  s2.set("service_mean", Json::number(1.0));
  servers.push_back(std::move(s2));
  scenario.set("servers", std::move(servers));
  scenario.set("transfer_model", Json::string("uniform"));
  scenario.set("transfer_mean", Json::number(1.0));

  Json request = Json::object();
  request.set("id", Json::string(id));
  request.set("kind", Json::string(kind));
  request.set("scenario", std::move(scenario));
  request.set("objective", Json::string("mean"));
  if (kind == "evaluate") {
    Json policy = Json::array();
    Json row0 = Json::array();
    row0.push_back(Json::number(0));
    row0.push_back(Json::number(1));
    policy.push_back(std::move(row0));
    Json row1 = Json::array();
    row1.push_back(Json::number(0));
    row1.push_back(Json::number(0));
    policy.push_back(std::move(row1));
    request.set("policy", std::move(policy));
  }
  return request;
}

DaemonOptions fast_options() {
  DaemonOptions options;
  options.conv.cells = 1u << 10;  // test-sized lattice
  options.max_eval_seconds = 30.0;
  return options;
}

Json submit_and_parse(Daemon& daemon, const Json& request) {
  std::future<std::string> future = daemon.submit(request.dump());
  return Json::parse(future.get());
}

std::string status_of(const Json& reply) {
  return reply.find("status")->as_string();
}

TEST(ServiceJson, RoundTripsEveryValueShape) {
  const std::string text =
      R"({"s":"a\"b\\c\n\u0041","n":-12.5,"i":42,"b":true,"z":null,)"
      R"("a":[1,[2,3],{"k":"v"}],"o":{"x":0.25}})";
  const Json parsed = Json::parse(text);
  // dump() -> parse() -> dump() is a fixed point: deterministic output.
  const std::string dumped = parsed.dump();
  EXPECT_EQ(Json::parse(dumped).dump(), dumped);
  EXPECT_EQ(parsed.find("s")->as_string(), "a\"b\\c\nA");
  EXPECT_EQ(parsed.find("n")->as_number(), -12.5);
  EXPECT_EQ(parsed.find("i")->as_number(), 42.0);
  EXPECT_TRUE(parsed.find("b")->as_bool());
  EXPECT_TRUE(parsed.find("z")->is_null());
  EXPECT_EQ(parsed.find("a")->at(1).at(0).as_number(), 2.0);
  EXPECT_EQ(parsed.find("o")->find("x")->as_number(), 0.25);
  // Integral numbers print without a fraction.
  EXPECT_NE(dumped.find("\"i\":42,"), std::string::npos);
}

TEST(ServiceJson, RejectsMalformedDocuments) {
  const std::vector<std::string> bad = {
      "",           "{",           "[1,]",        "{\"a\":}",
      "tru",        "\"unclosed",  "1 2",         "{\"a\":1,}",
      "[1] garbage", "nan",        "{\"a\" 1}",   "\"\\x\"",
      "\x01",       "{1: 2}",
  };
  for (const std::string& text : bad) {
    EXPECT_THROW((void)Json::parse(text), InvalidArgument) << text;
  }
  // Nesting past kMaxDepth is malformed input, not a stack overflow.
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_THROW((void)Json::parse(deep), InvalidArgument);
}

TEST(ServiceProtocol, FramesRoundTripAndFailuresAreClassified) {
  std::stringstream wire;
  write_frame(wire, "hello");
  write_frame(wire, "");
  std::string payload;
  EXPECT_EQ(read_frame(wire, payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "hello");
  EXPECT_EQ(read_frame(wire, payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "");
  EXPECT_EQ(read_frame(wire, payload), FrameStatus::kEof);

  std::stringstream bad_length("x5\nhello");
  EXPECT_EQ(read_frame(bad_length, payload), FrameStatus::kMalformed);
  std::stringstream truncated("10\nhel");
  EXPECT_EQ(read_frame(truncated, payload), FrameStatus::kMalformed);
  std::stringstream oversize("999999\n");
  EXPECT_EQ(read_frame(oversize, payload, /*max_frame_bytes=*/64),
            FrameStatus::kOversize);
  std::stringstream no_digits("\npayload");
  EXPECT_EQ(read_frame(no_digits, payload), FrameStatus::kMalformed);
}

TEST(ServiceRequest, ValidationNamesTheOffendingField) {
  const struct {
    const char* mutate_key;
    Json value;
  } cases[] = {
      {"id", Json::string("")},
      {"kind", Json::string("solve")},
      {"class", Json::string("bulk")},
      {"deadline_ms", Json::number(-1.0)},
      {"objective", Json::string("latency")},
  };
  for (const auto& c : cases) {
    Json request = base_request("req-1", "evaluate");
    request.set(c.mutate_key, c.value);
    try {
      (void)parse_request(request);
      FAIL() << "expected InvalidArgument for field " << c.mutate_key;
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find(c.mutate_key), std::string::npos)
          << e.what();
    }
  }

  // Policy shape violations.
  Json request = base_request("req-1", "evaluate");
  Json ragged = Json::array();
  ragged.push_back(Json::array());
  request.set("policy", std::move(ragged));
  EXPECT_THROW((void)parse_request(request), InvalidArgument);

  // Search requests are 2-server by contract.
  Json search = base_request("req-2", "search");
  Json* scenario = const_cast<Json*>(search.find("scenario"));
  Json extra = Json::object();
  extra.set("tasks", Json::number(1));
  const_cast<Json*>(scenario->find("servers"))->push_back(std::move(extra));
  EXPECT_THROW((void)parse_request(search), InvalidArgument);
}

TEST(ServiceRequest, FingerprintsTrackSemanticsNotTransport) {
  const Request a = parse_request(base_request("req-a", "evaluate"));

  Json same_work = base_request("req-b", "evaluate");
  same_work.set("class", Json::string("interactive"));
  same_work.set("deadline_ms", Json::number(250.0));
  const Request b = parse_request(same_work);
  // Transport fields (id, class, deadline) do not change identity.
  EXPECT_EQ(work_fingerprint(a), work_fingerprint(b));
  EXPECT_EQ(scenario_fingerprint(a), scenario_fingerprint(b));

  Json other_policy = base_request("req-c", "evaluate");
  Json policy = Json::array();
  Json row0 = Json::array();
  row0.push_back(Json::number(0));
  row0.push_back(Json::number(2));
  policy.push_back(std::move(row0));
  Json row1 = Json::array();
  row1.push_back(Json::number(0));
  row1.push_back(Json::number(0));
  policy.push_back(std::move(row1));
  other_policy.set("policy", std::move(policy));
  const Request c = parse_request(other_policy);
  // The policy is part of the work but not of the evaluation substrate.
  EXPECT_NE(work_fingerprint(a), work_fingerprint(c));
  EXPECT_EQ(scenario_fingerprint(a), scenario_fingerprint(c));

  Json other_scenario = base_request("req-d", "evaluate");
  const_cast<Json*>(other_scenario.find("scenario"))
      ->set("transfer_mean", Json::number(2.0));
  const Request d = parse_request(other_scenario);
  EXPECT_NE(scenario_fingerprint(a), scenario_fingerprint(d));
}

TEST(ServiceDaemon, EvaluateMatchesTheDirectEngineBitForBit) {
  Daemon daemon(fast_options());
  const Json reply = submit_and_parse(daemon, base_request("r1", "evaluate"));
  ASSERT_EQ(status_of(reply), "ok");
  EXPECT_EQ(reply.find("tier")->as_string(), "convolution");

  // The same value through a directly constructed engine.
  const Request request = parse_request(base_request("r1", "evaluate"));
  policy::EvaluationEngineOptions options;
  options.conv.cells = 1u << 10;
  options.conv.budget.max_seconds = 30.0;
  const policy::EvaluationEngine engine(build_scenario(request), options);
  EXPECT_EQ(reply.find("value")->as_number(),
            engine.evaluate(build_policy(request)));

  // A second submission of the same scenario hits the warm engine.
  const Json again = submit_and_parse(daemon, base_request("r2", "evaluate"));
  ASSERT_EQ(status_of(again), "ok");
  EXPECT_EQ(again.find("value")->as_number(),
            reply.find("value")->as_number());
  EXPECT_EQ(daemon.stats_snapshot().engine_cache_hits, 1u);
}

TEST(ServiceDaemon, MalformedAndInvalidBytesBecomeStructuredReplies) {
  Daemon daemon(fast_options());
  // Not JSON at all.
  Json reply = Json::parse(daemon.submit("this is not json").get());
  EXPECT_EQ(status_of(reply), "invalid_request");
  // JSON, but invalid by schema — the id is still echoed.
  reply = Json::parse(
      daemon.submit(R"({"id":"bad-1","kind":"teleport"})").get());
  EXPECT_EQ(status_of(reply), "invalid_request");
  EXPECT_EQ(reply.find("id")->as_string(), "bad-1");
  EXPECT_NE(reply.find("error")->as_string().find("kind"),
            std::string::npos);
  // Infeasible policy (moves more tasks than the server holds): rejected
  // by the deeper validation layer, still a structured reply.
  Json infeasible = base_request("bad-2", "evaluate");
  Json policy = Json::array();
  Json row0 = Json::array();
  row0.push_back(Json::number(0));
  row0.push_back(Json::number(99));
  policy.push_back(std::move(row0));
  Json row1 = Json::array();
  row1.push_back(Json::number(0));
  row1.push_back(Json::number(0));
  policy.push_back(std::move(row1));
  infeasible.set("policy", std::move(policy));
  reply = submit_and_parse(daemon, infeasible);
  EXPECT_EQ(status_of(reply), "invalid_request");
  // Fault injection is rejected unless the daemon opted in.
  Json faulty = base_request("bad-3", "evaluate");
  faulty.set("fault", Json::string("always_fail"));
  reply = submit_and_parse(daemon, faulty);
  EXPECT_EQ(status_of(reply), "invalid_request");
}

TEST(ServiceDaemon, BatchClassIsShedAtTheWatermarkInteractiveIsNot) {
  DaemonOptions options = fast_options();
  options.batch_watermark = 0;  // shed every batch-class request
  Daemon daemon(options);

  Json batch = base_request("b1", "evaluate");  // class defaults to batch
  Json reply = submit_and_parse(daemon, batch);
  EXPECT_EQ(status_of(reply), "overloaded");
  EXPECT_NE(reply.find("queue_depth"), nullptr);
  EXPECT_NE(reply.find("retry_after_ms"), nullptr);

  Json interactive = base_request("i1", "evaluate");
  interactive.set("class", Json::string("interactive"));
  reply = submit_and_parse(daemon, interactive);
  EXPECT_EQ(status_of(reply), "ok");
  EXPECT_EQ(daemon.stats_snapshot().shed, 1u);
}

TEST(ServiceDaemon, ExpiredDeadlineIsAnsweredNotDropped) {
  Daemon daemon(fast_options());
  Json request = base_request("d1", "evaluate");
  request.set("deadline_ms", Json::number(0.001));
  const Json reply = submit_and_parse(daemon, request);
  EXPECT_EQ(status_of(reply), "deadline_exceeded");
  EXPECT_EQ(daemon.stats_snapshot().deadline_exceeded, 1u);
}

TEST(ServiceDaemon, ResilientRequestsNameTheAnsweringTier) {
  Daemon daemon(fast_options());
  Json request = base_request("t1", "evaluate");
  request.set("resilient", Json::boolean(true));
  const Json reply = submit_and_parse(daemon, request);
  ASSERT_EQ(status_of(reply), "ok");
  const std::string tier = reply.find("tier")->as_string();
  EXPECT_TRUE(tier == "regenerative" || tier == "convolution" ||
              tier == "markovian" || tier == "monte-carlo" ||
              tier == "monte_carlo")
      << tier;
  EXPECT_TRUE(reply.find("degraded")->as_bool());
}

TEST(ServiceDaemon, RepeatOffendersArePoisonedAndFastRejected) {
  DaemonOptions options = fast_options();
  options.enable_test_faults = true;
  options.max_retries = 0;
  options.poison_strikes = 1;
  options.backoff_initial_seconds = 0.0;
  Daemon daemon(options);

  Json poison = base_request("p1", "evaluate");
  poison.set("fault", Json::string("always_fail"));
  Json reply = submit_and_parse(daemon, poison);
  EXPECT_EQ(status_of(reply), "failed");
  EXPECT_NE(reply.find("error")->as_string().find("always_fail"),
            std::string::npos);

  // Same work under a new id: rejected at admission, solver untouched.
  Json again = base_request("p2", "evaluate");
  again.set("fault", Json::string("always_fail"));
  reply = submit_and_parse(daemon, again);
  EXPECT_EQ(status_of(reply), "poisoned");
  EXPECT_EQ(daemon.stats_snapshot().poisoned, 1u);

  // A flaky request recovers through retry and is NOT poisoned.
  DaemonOptions retry_options = fast_options();
  retry_options.enable_test_faults = true;
  retry_options.max_retries = 2;
  retry_options.backoff_initial_seconds = 0.0;
  Daemon retrying(retry_options);
  Json flaky = base_request("f1", "evaluate");
  flaky.set("fault", Json::string("flaky:1"));
  reply = submit_and_parse(retrying, flaky);
  EXPECT_EQ(status_of(reply), "ok");
}

TEST(ServiceDaemon, JournaledSearchesReplayAcrossRestartBitForBit) {
  const std::string journal = temp_path("journal");
  std::remove(journal.c_str());
  std::string first_dump;
  {
    DaemonOptions options = fast_options();
    options.journal_path = journal;
    Daemon daemon(options);
    const Json reply = submit_and_parse(daemon, base_request("s1", "search"));
    ASSERT_EQ(status_of(reply), "ok");
    EXPECT_FALSE(reply.find("replayed")->as_bool());
    first_dump = reply.dump();
  }
  {
    DaemonOptions options = fast_options();
    options.journal_path = journal;
    Daemon daemon(options);
    // Same work, new id: answered from the journal, values bit-identical.
    const Json reply = submit_and_parse(daemon, base_request("s2", "search"));
    ASSERT_EQ(status_of(reply), "ok") << reply.dump();
    EXPECT_TRUE(reply.find("replayed")->as_bool());
    EXPECT_EQ(daemon.stats_snapshot().replayed, 1u);
    const Json first = Json::parse(first_dump);
    EXPECT_EQ(reply.find("value")->as_number(),
              first.find("value")->as_number());
    EXPECT_EQ(reply.find("l12")->as_number(),
              first.find("l12")->as_number());
    EXPECT_EQ(reply.find("l21")->as_number(),
              first.find("l21")->as_number());
  }
  std::remove(journal.c_str());
}

TEST(ServiceDaemon, SearchAgreesWithTheDirectGridSearch) {
  Daemon daemon(fast_options());
  const Json reply = submit_and_parse(daemon, base_request("g1", "search"));
  ASSERT_EQ(status_of(reply), "ok");

  const Request request = parse_request(base_request("g1", "search"));
  policy::EvaluationEngineOptions options;
  options.conv.cells = 1u << 10;
  options.conv.budget.max_seconds = 30.0;
  const policy::EvaluationEngine engine(build_scenario(request), options);
  const policy::TwoServerPolicySearch search(4, 2);
  const policy::PolicyPoint best = search.optimize(engine, false);
  EXPECT_EQ(reply.find("l12")->as_number(), best.l12);
  EXPECT_EQ(reply.find("l21")->as_number(), best.l21);
  EXPECT_EQ(reply.find("value")->as_number(), best.value);
}

TEST(ServiceDaemon, ServeStreamAnswersInOrderAndStopsOnMalformedFrames) {
  Daemon daemon(fast_options());
  std::stringstream in;
  write_frame(in, base_request("w1", "evaluate").dump());
  write_frame(in, R"({"id":"w2","kind":"ping"})");
  in << "junk-not-a-frame";
  std::stringstream out;
  daemon.serve_stream(in, out);

  std::string payload;
  ASSERT_EQ(read_frame(out, payload), FrameStatus::kOk);
  EXPECT_EQ(Json::parse(payload).find("id")->as_string(), "w1");
  ASSERT_EQ(read_frame(out, payload), FrameStatus::kOk);
  EXPECT_EQ(Json::parse(payload).find("id")->as_string(), "w2");
  ASSERT_EQ(read_frame(out, payload), FrameStatus::kOk);
  EXPECT_EQ(status_of(Json::parse(payload)), "malformed_frame");
  EXPECT_EQ(read_frame(out, payload), FrameStatus::kEof);
}

TEST(ServiceDaemon, EveryPromiseIsFulfilledThroughShutdown) {
  DaemonOptions options = fast_options();
  Daemon daemon(options);
  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(
        daemon.submit(base_request("x" + std::to_string(i), "evaluate")
                          .dump()));
  }
  daemon.stop();
  // Exactly-once: stop() drains — every future is fulfilled with either a
  // real answer or a structured shutting_down reply, never abandoned.
  for (std::future<std::string>& f : futures) {
    const Json reply = Json::parse(f.get());
    const std::string status = status_of(reply);
    EXPECT_TRUE(status == "ok" || status == "shutting_down") << status;
  }
  // Post-shutdown submissions are refused in a structured way.
  const Json late =
      Json::parse(daemon.submit(base_request("late", "evaluate").dump()).get());
  EXPECT_EQ(status_of(late), "shutting_down");
}

TEST(ServiceDaemon, ShutdownRequestClosesAdmission) {
  Daemon daemon(fast_options());
  Json shutdown = Json::object();
  shutdown.set("id", Json::string("sd1"));
  shutdown.set("kind", Json::string("shutdown"));
  const Json reply = submit_and_parse(daemon, shutdown);
  EXPECT_EQ(status_of(reply), "ok");
  EXPECT_TRUE(daemon.shutdown_requested());
  const Json refused =
      Json::parse(daemon.submit(base_request("sd2", "evaluate").dump()).get());
  EXPECT_EQ(status_of(refused), "shutting_down");
}

}  // namespace
}  // namespace agedtr::service
