// Property tests over every distribution family: normalization, CDF/PDF
// consistency, quantile inversion, moments, analytic tail integrals and
// Laplace transforms against quadrature, and sampling against the CDF.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/deterministic.hpp"
#include "agedtr/dist/empirical.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/gamma.hpp"
#include "agedtr/dist/lognormal.hpp"
#include "agedtr/dist/pareto.hpp"
#include "agedtr/dist/uniform.hpp"
#include "agedtr/dist/weibull.hpp"
#include "agedtr/numerics/quadrature.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::dist {
namespace {

struct FamilyCase {
  std::string label;
  DistPtr d;
  bool heavy_tail = false;  // relaxes quadrature-based second-moment checks
};

std::vector<FamilyCase> continuous_families() {
  return {
      {"exponential", std::make_shared<Exponential>(0.5)},
      {"shifted_exponential", std::make_shared<ShiftedExponential>(1.0, 2.0)},
      {"uniform", std::make_shared<Uniform>(0.5, 3.5)},
      {"pareto_finite_var", std::make_shared<Pareto>(1.2, 2.5)},
      {"pareto_infinite_var", std::make_shared<Pareto>(0.8, 1.5), true},
      {"lomax", std::make_shared<Lomax>(2.0, 3.0)},
      {"gamma", std::make_shared<Gamma>(2.5, 0.8)},
      {"gamma_shape_below_one", std::make_shared<Gamma>(0.7, 1.5)},
      {"shifted_gamma", std::make_shared<ShiftedGamma>(0.6, 2.0, 0.3)},
      {"weibull_increasing_hazard", std::make_shared<Weibull>(2.0, 1.5)},
      {"weibull_decreasing_hazard", std::make_shared<Weibull>(0.8, 2.0)},
      {"lognormal", std::make_shared<LogNormal>(0.2, 0.6)},
  };
}

class FamilyTest : public ::testing::TestWithParam<FamilyCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyTest, ::testing::ValuesIn(continuous_families()),
    [](const ::testing::TestParamInfo<FamilyCase>& param_info) {
      return param_info.param.label;
    });

double integrate_pdf(const Distribution& d, double lo, double hi) {
  if (std::isfinite(hi)) {
    return numerics::integrate([&d](double x) { return d.pdf(x); }, lo, hi,
                               1e-12, 1e-10, 4000)
        .value;
  }
  return numerics::integrate_to_infinity(
             [&d](double x) { return d.pdf(x); }, lo, 1e-12, 1e-10, 4000)
      .value;
}

TEST_P(FamilyTest, PdfIntegratesToOne) {
  const auto& d = *GetParam().d;
  const double lo = d.lower_bound() + (d.pdf(d.lower_bound()) > 1e300 ||
                                               !std::isfinite(d.pdf(
                                                   d.lower_bound()))
                                           ? 1e-12
                                           : 0.0);
  EXPECT_NEAR(integrate_pdf(d, lo, d.upper_bound()), 1.0, 2e-6);
}

TEST_P(FamilyTest, CdfIsPdfAntiderivative) {
  const auto& d = *GetParam().d;
  for (double p : {0.2, 0.5, 0.8}) {
    const double x = d.quantile(p);
    const double mass = integrate_pdf(d, d.lower_bound() + 1e-12, x);
    EXPECT_NEAR(mass, d.cdf(x), 5e-6) << "p=" << p;
  }
}

TEST_P(FamilyTest, CdfMonotoneAndBounded) {
  const auto& d = *GetParam().d;
  double prev = -1.0;
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const double x = d.quantile(p);
    const double f = d.cdf(x);
    EXPECT_GE(f, prev - 1e-12);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(d.cdf(d.lower_bound() - 1.0), 0.0);
}

TEST_P(FamilyTest, SurvivalComplementsCdf) {
  const auto& d = *GetParam().d;
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    const double x = d.quantile(p);
    EXPECT_NEAR(d.cdf(x) + d.sf(x), 1.0, 1e-10);
  }
}

TEST_P(FamilyTest, QuantileInvertsCdf) {
  const auto& d = *GetParam().d;
  for (double p : {0.001, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-7) << "p=" << p;
  }
}

TEST_P(FamilyTest, MeanMatchesQuadrature) {
  const auto& d = *GetParam().d;
  // E[X] = lower + ∫_{lower}^∞ S(x) dx.
  const double lo = d.lower_bound();
  const double hi = d.upper_bound();
  double tail_integral;
  if (std::isfinite(hi)) {
    tail_integral = numerics::integrate(
                        [&d](double x) { return d.sf(x); }, lo, hi)
                        .value;
  } else {
    tail_integral = numerics::integrate_to_infinity(
                        [&d](double x) { return d.sf(x); }, lo, 1e-12, 1e-10,
                        4000)
                        .value;
  }
  const double tol = GetParam().heavy_tail ? 0.02 * d.mean() : 1e-5 * (1.0 + d.mean());
  EXPECT_NEAR(d.mean(), lo + tail_integral, tol);
}

TEST_P(FamilyTest, IntegralSfMatchesQuadrature) {
  const auto& d = *GetParam().d;
  for (double p : {0.3, 0.7, 0.95}) {
    const double t = d.quantile(p);
    double reference;
    if (std::isfinite(d.upper_bound())) {
      reference = numerics::integrate([&d](double x) { return d.sf(x); }, t,
                                      d.upper_bound())
                      .value;
    } else {
      reference = numerics::integrate_to_infinity(
                      [&d](double x) { return d.sf(x); }, t, 1e-12, 1e-10,
                      4000)
                      .value;
    }
    const double tol =
        (GetParam().heavy_tail ? 2e-2 : 1e-5) * (1.0 + reference);
    EXPECT_NEAR(d.integral_sf(t), reference, tol) << "p=" << p;
  }
}

TEST_P(FamilyTest, IntegralSfBelowSupportAddsGap) {
  const auto& d = *GetParam().d;
  // ∫_t^∞ S = (t' − t) + ∫_{t'}^∞ S for any t below the support.
  const double at_zero = d.integral_sf(0.0);
  EXPECT_NEAR(d.integral_sf(-2.0), at_zero + 2.0, 1e-9);
}

TEST_P(FamilyTest, LaplaceMatchesQuadrature) {
  const auto& d = *GetParam().d;
  for (double s : {0.0, 0.3, 2.0}) {
    const auto integrand = [&d, s](double x) {
      return std::exp(-s * x) * d.pdf(x);
    };
    double reference;
    if (std::isfinite(d.upper_bound())) {
      reference = numerics::integrate(integrand, d.lower_bound() + 1e-12,
                                      d.upper_bound())
                      .value;
    } else {
      reference = numerics::integrate_to_infinity(
                      integrand, d.lower_bound() + 1e-12, 1e-12, 1e-10, 4000)
                      .value;
    }
    EXPECT_NEAR(d.laplace(s), reference, 1e-5) << "s=" << s;
  }
}

TEST_P(FamilyTest, SamplingMeanConverges) {
  const auto& d = *GetParam().d;
  random::Rng rng(2718);
  const int n = GetParam().heavy_tail ? 400000 : 60000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  const double tol = GetParam().heavy_tail ? 0.15 * d.mean()
                                           : 0.03 * (1.0 + d.mean());
  EXPECT_NEAR(sum / n, d.mean(), tol);
}

TEST_P(FamilyTest, SamplingMatchesCdfAtQuartiles) {
  const auto& d = *GetParam().d;
  random::Rng rng(979);
  const int n = 40000;
  const double q1 = d.quantile(0.25);
  const double q3 = d.quantile(0.75);
  int below_q1 = 0, below_q3 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    if (x <= q1) ++below_q1;
    if (x <= q3) ++below_q3;
  }
  EXPECT_NEAR(below_q1 / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR(below_q3 / static_cast<double>(n), 0.75, 0.01);
}

TEST_P(FamilyTest, HazardIsPdfOverSurvival) {
  const auto& d = *GetParam().d;
  const double x = d.quantile(0.6);
  EXPECT_NEAR(d.hazard(x), d.pdf(x) / d.sf(x), 1e-9);
}

TEST_P(FamilyTest, SamplesRespectSupport) {
  const auto& d = *GetParam().d;
  random::Rng rng(55);
  for (int i = 0; i < 2000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, d.lower_bound() - 1e-12);
    EXPECT_LE(x, d.upper_bound() + 1e-12);
  }
}

// --- family-specific behaviour -------------------------------------------

TEST(Exponential, MemorylessFlagAndHazard) {
  const Exponential e(2.0);
  EXPECT_TRUE(e.is_memoryless());
  EXPECT_DOUBLE_EQ(e.hazard(0.1), 2.0);
  EXPECT_DOUBLE_EQ(e.hazard(10.0), 2.0);
}

TEST(Exponential, WithMean) {
  const DistPtr e = Exponential::with_mean(4.0);
  EXPECT_NEAR(e->mean(), 4.0, 1e-14);
}

TEST(Exponential, RejectsBadRate) {
  EXPECT_THROW(Exponential(0.0), InvalidArgument);
  EXPECT_THROW(Exponential(-1.0), InvalidArgument);
}

TEST(ShiftedExponential, CapturesMinimumDelay) {
  const ShiftedExponential se(1.5, 1.0);
  EXPECT_DOUBLE_EQ(se.cdf(1.4), 0.0);
  EXPECT_DOUBLE_EQ(se.sf(1.0), 1.0);
  EXPECT_FALSE(se.is_memoryless());
  EXPECT_NEAR(se.mean(), 2.5, 1e-14);
}

TEST(ShiftedExponential, PaperMeanConvention) {
  const DistPtr se = ShiftedExponential::with_mean(3.0);
  EXPECT_NEAR(se->mean(), 3.0, 1e-12);
  EXPECT_NEAR(se->lower_bound(), 1.5, 1e-12);
}

TEST(Pareto, VarianceClasses) {
  const Pareto finite(1.0, 2.5);
  const Pareto infinite(1.0, 1.5);
  EXPECT_TRUE(std::isfinite(finite.variance()));
  EXPECT_TRUE(std::isinf(infinite.variance()));
}

TEST(Pareto, WithMeanHitsTarget) {
  for (double alpha : {1.5, 2.5}) {
    const DistPtr p = Pareto::with_mean(2.0, alpha);
    EXPECT_NEAR(p->mean(), 2.0, 1e-12) << "alpha=" << alpha;
  }
}

TEST(Pareto, RejectsAlphaBelowOne) {
  EXPECT_THROW(Pareto(1.0, 1.0), InvalidArgument);
  EXPECT_THROW(Pareto(1.0, 0.5), InvalidArgument);
}

TEST(Uniform, PaperConvention) {
  const DistPtr u = Uniform::with_mean(2.0);
  EXPECT_NEAR(u->mean(), 2.0, 1e-14);
  EXPECT_NEAR(u->upper_bound(), 4.0, 1e-14);
  EXPECT_NEAR(u->lower_bound(), 0.0, 1e-14);
}

TEST(Gamma, MomentsClosedForm) {
  const Gamma g(3.0, 2.0);
  EXPECT_NEAR(g.mean(), 6.0, 1e-14);
  EXPECT_NEAR(g.variance(), 12.0, 1e-14);
}

TEST(Gamma, LaplaceClosedForm) {
  const Gamma g(2.0, 0.5);
  EXPECT_NEAR(g.laplace(1.0), std::pow(1.5, -2.0), 1e-12);
}

TEST(ShiftedGamma, SupportAndMean) {
  const ShiftedGamma sg(0.5, 2.0, 0.25);
  EXPECT_DOUBLE_EQ(sg.cdf(0.49), 0.0);
  EXPECT_NEAR(sg.mean(), 1.0, 1e-14);
}

TEST(Weibull, ShapeOneIsExponential) {
  const Weibull w(1.0, 2.0);
  const Exponential e(0.5);
  for (double x : {0.1, 1.0, 5.0}) {
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
  }
}

TEST(Weibull, WithMean) {
  const DistPtr w = Weibull::with_mean(3.0, 2.0);
  EXPECT_NEAR(w->mean(), 3.0, 1e-10);
}

TEST(Deterministic, PointMassBehaviour) {
  const Deterministic d(2.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.999), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 1.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
  random::Rng rng(1);
  EXPECT_DOUBLE_EQ(d.sample(rng), 2.0);
  EXPECT_DOUBLE_EQ(d.integral_sf(0.5), 1.5);
  EXPECT_DOUBLE_EQ(d.integral_sf(3.0), 0.0);
}

TEST(Empirical, EcdfAndQuantiles) {
  const Empirical e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(e.cdf(10.0), 1.0);
  EXPECT_NEAR(e.mean(), 2.5, 1e-14);
  EXPECT_NEAR(e.quantile(0.5), 2.5, 1e-12);
}

TEST(Empirical, SamplesComeFromData) {
  const Empirical e({1.0, 5.0, 9.0});
  random::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double x = e.sample(rng);
    EXPECT_TRUE(x == 1.0 || x == 5.0 || x == 9.0);
  }
}

TEST(Builders, AllFamiliesShareTheMean) {
  for (const ModelFamily family : all_model_families()) {
    const DistPtr d = make_model_distribution(family, 2.0);
    EXPECT_NEAR(d->mean(), 2.0, 1e-9) << model_family_name(family);
  }
}

TEST(Builders, VarianceClassesMatchPaper) {
  const DistPtr p1 = make_model_distribution(ModelFamily::kPareto1, 2.0);
  const DistPtr p2 = make_model_distribution(ModelFamily::kPareto2, 2.0);
  EXPECT_TRUE(std::isfinite(p1->variance()));
  EXPECT_TRUE(std::isinf(p2->variance()));
}

TEST(Builders, ParseRoundTrips) {
  for (const ModelFamily family : all_model_families()) {
    EXPECT_EQ(parse_model_family(model_family_name(family)), family);
  }
  EXPECT_EQ(parse_model_family("pareto2"), ModelFamily::kPareto2);
  EXPECT_THROW(static_cast<void>(parse_model_family("cauchy")), InvalidArgument);
}

TEST(Describe, MentionsFamilyAndParameters) {
  EXPECT_NE(Exponential(2.0).describe().find("rate=2.000"),
            std::string::npos);
  EXPECT_NE(Pareto(1.0, 2.5).describe().find("alpha=2.500"),
            std::string::npos);
}

}  // namespace
}  // namespace agedtr::dist
