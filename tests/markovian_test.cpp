// The Markovian baseline of [2],[7]: DP recursions against closed forms and
// against the independent CTMC uniformization solver.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/core/ctmc.hpp"
#include "agedtr/core/markovian.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/uniform.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::core {
namespace {

DcsScenario exp_scenario(std::vector<int> tasks,
                         std::vector<double> service_means,
                         std::vector<double> failure_means,
                         double transfer_mean) {
  std::vector<ServerSpec> servers;
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    servers.push_back(
        {tasks[j], dist::Exponential::with_mean(service_means[j]),
         failure_means.empty()
             ? nullptr
             : dist::Exponential::with_mean(failure_means[j])});
  }
  return make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(transfer_mean),
      dist::Exponential::with_mean(0.2));
}

TEST(Markovian, SingleServerMeanIsLittleLaw) {
  // One server, m tasks, rate μ: T̄ = m/μ exactly.
  DcsScenario s;
  s.servers = {{7, dist::Exponential::with_mean(2.0), nullptr}};
  s.transfer = {{nullptr}};
  const MarkovianSolver solver(s);
  EXPECT_NEAR(solver.mean_execution_time(DtrPolicy(1)), 14.0, 1e-12);
}

TEST(Markovian, SingleServerReliabilityClosedForm) {
  // m sequential μ-vs-λ races: R = (μ/(μ+λ))^m.
  DcsScenario s;
  s.servers = {{5, dist::Exponential::with_mean(1.0),
                dist::Exponential::with_mean(10.0)}};
  s.transfer = {{nullptr}};
  const MarkovianSolver solver(s);
  EXPECT_NEAR(solver.reliability(DtrPolicy(1)), std::pow(10.0 / 11.0, 5),
              1e-12);
}

TEST(Markovian, TwoServerMeanMatchesCtmc) {
  const DcsScenario s = exp_scenario({6, 4}, {2.0, 1.0}, {}, 1.5);
  const MarkovianSolver solver(s);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  policy.set(1, 0, 1);
  const CtmcTransientSolver ctmc(s, policy);
  EXPECT_NEAR(solver.mean_execution_time(policy),
              ctmc.mean_absorption_time(), 1e-9);
}

TEST(Markovian, TwoServerReliabilityMatchesCtmc) {
  const DcsScenario s = exp_scenario({5, 3}, {2.0, 1.0}, {50.0, 30.0}, 1.5);
  const MarkovianSolver solver(s);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  const CtmcTransientSolver ctmc(s, policy);
  EXPECT_NEAR(solver.reliability(policy), ctmc.reliability(), 1e-9);
}

TEST(Markovian, ReliabilityOneWithoutFailures) {
  const DcsScenario s = exp_scenario({5, 3}, {2.0, 1.0}, {}, 1.0);
  const MarkovianSolver solver(s);
  DtrPolicy policy(2);
  policy.set(0, 1, 1);
  EXPECT_DOUBLE_EQ(solver.reliability(policy), 1.0);
}

TEST(Markovian, TransfersDelayCompletion) {
  // Moving work across a slow network must not beat keeping it local when
  // the receiving server is the same speed.
  const DcsScenario s = exp_scenario({6, 6}, {1.0, 1.0}, {}, 10.0);
  const MarkovianSolver solver(s);
  DtrPolicy keep(2);
  DtrPolicy move(2);
  move.set(0, 1, 3);
  EXPECT_LT(solver.mean_execution_time(keep),
            solver.mean_execution_time(move));
}

TEST(Markovian, OffloadingToFastServerHelps) {
  // Slow server holds everything; the fast idle server is 10× faster and
  // the network is quick: offloading should cut the mean execution time.
  const DcsScenario s = exp_scenario({10, 0}, {10.0, 1.0}, {}, 0.1);
  const MarkovianSolver solver(s);
  DtrPolicy keep(2);
  DtrPolicy offload(2);
  offload.set(0, 1, 8);
  EXPECT_GT(solver.mean_execution_time(keep),
            solver.mean_execution_time(offload));
}

TEST(Markovian, MeanRequiresReliableServers) {
  const DcsScenario s = exp_scenario({3, 2}, {1.0, 1.0}, {100.0, 100.0}, 1.0);
  const MarkovianSolver solver(s);
  EXPECT_THROW(static_cast<void>(solver.mean_execution_time(DtrPolicy(2))), InvalidArgument);
}

TEST(Markovian, RejectsNonExponentialLaws) {
  DcsScenario s = exp_scenario({3, 2}, {1.0, 1.0}, {}, 1.0);
  s.servers[0].service = std::make_shared<dist::Uniform>(0.0, 2.0);
  EXPECT_THROW(MarkovianSolver{s}, InvalidArgument);
}

TEST(Markovian, ThreeServerSymmetryOfRelabeling) {
  // Permuting two identical servers must not change the metric.
  const DcsScenario s = exp_scenario({9, 3, 3}, {1.0, 2.0, 2.0}, {}, 1.0);
  const MarkovianSolver solver(s);
  DtrPolicy to_second(3);
  to_second.set(0, 1, 4);
  DtrPolicy to_third(3);
  to_third.set(0, 2, 4);
  EXPECT_NEAR(solver.mean_execution_time(to_second),
              solver.mean_execution_time(to_third), 1e-10);
}

TEST(Ctmc, QosMonotoneInDeadline) {
  const DcsScenario s = exp_scenario({4, 2}, {2.0, 1.0}, {}, 1.0);
  DtrPolicy policy(2);
  policy.set(0, 1, 1);
  const CtmcTransientSolver ctmc(s, policy);
  double prev = 0.0;
  for (double t : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    const double q = ctmc.qos(t);
    EXPECT_GE(q, prev - 1e-12);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
    prev = q;
  }
}

TEST(Ctmc, QosApproachesReliability) {
  const DcsScenario s = exp_scenario({4, 2}, {2.0, 1.0}, {80.0, 60.0}, 1.0);
  DtrPolicy policy(2);
  policy.set(0, 1, 1);
  const CtmcTransientSolver ctmc(s, policy);
  EXPECT_NEAR(ctmc.qos(5000.0), ctmc.reliability(), 1e-6);
}

TEST(Ctmc, QosZeroAtZeroDeadline) {
  const DcsScenario s = exp_scenario({2, 1}, {1.0, 1.0}, {}, 1.0);
  const CtmcTransientSolver ctmc(s, DtrPolicy(2));
  EXPECT_NEAR(ctmc.qos(0.0), 0.0, 1e-12);
}

TEST(Ctmc, QosAtMedianIsInterior) {
  const DcsScenario s = exp_scenario({4, 2}, {2.0, 1.0}, {}, 1.0);
  const CtmcTransientSolver ctmc(s, DtrPolicy(2));
  const double mean = ctmc.mean_absorption_time();
  const double q = ctmc.qos(mean);
  EXPECT_GT(q, 0.2);
  EXPECT_LT(q, 0.9);
}

TEST(Ctmc, EmptyWorkloadIsImmediatelyDone) {
  const DcsScenario s = exp_scenario({0, 0}, {1.0, 1.0}, {10.0, 10.0}, 1.0);
  const CtmcTransientSolver ctmc(s, DtrPolicy(2));
  EXPECT_DOUBLE_EQ(ctmc.qos(1.0), 1.0);
  EXPECT_DOUBLE_EQ(ctmc.reliability(), 1.0);
}

TEST(Ctmc, StateCountIsReasonable) {
  const DcsScenario s = exp_scenario({10, 5}, {2.0, 1.0}, {}, 1.0);
  DtrPolicy policy(2);
  policy.set(0, 1, 3);
  policy.set(1, 0, 2);
  const CtmcTransientSolver ctmc(s, policy);
  // (m1+L21+1)·(m2+L12+1)·group subsets, plus absorbing states.
  EXPECT_GT(ctmc.state_count(), 50u);
  EXPECT_LT(ctmc.state_count(), 10u * 9u * 4u + 3u);
}

}  // namespace
}  // namespace agedtr::core
