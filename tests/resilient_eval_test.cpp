// The graceful-degradation fallback chain: tier selection, downgrade on
// each failure class (depth budget, wall-clock budget, state-space cap,
// non-memoryless refusal, no-support Monte-Carlo), value agreement with the
// direct solvers, and the no-throw contract.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/markovian.hpp"
#include "agedtr/dist/deterministic.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/uniform.hpp"
#include "agedtr/policy/resilient_eval.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"

namespace agedtr::policy {
namespace {

using core::DcsScenario;
using core::DtrPolicy;
using core::ServerSpec;

DcsScenario tiny_scenario() {
  // Small enough for the reference recursion's default 0.5 s budget (a
  // 2+1-task system with a transfer group already exceeds it).
  std::vector<ServerSpec> servers = {
      {1, dist::Exponential::with_mean(2.0),
       dist::Exponential::with_mean(50.0)},
      {1, dist::Exponential::with_mean(1.0),
       dist::Exponential::with_mean(40.0)}};
  return core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(1.5),
      dist::Exponential::with_mean(0.2));
}

DcsScenario paper_scale_scenario() {
  std::vector<ServerSpec> servers = {
      {100, dist::Exponential::with_mean(2.0),
       dist::Exponential::with_mean(1000.0)},
      {50, dist::Exponential::with_mean(1.0),
       dist::Exponential::with_mean(500.0)}};
  return core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(9.0),
      dist::Exponential::with_mean(1.0));
}

bool tier_declined(const EvalOutcome& outcome, EvalTier tier) {
  for (const TierFailure& f : outcome.failures) {
    if (f.tier == tier) return true;
  }
  return false;
}

TEST(ResilientEval, RegenerativeAnswersTinyConfigurations) {
  const ResilientEvaluator eval(tiny_scenario(), {});
  const EvalOutcome outcome = eval.evaluate(DtrPolicy(2));
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.tier, EvalTier::kRegenerative);
  EXPECT_TRUE(outcome.failures.empty());
  EXPECT_GT(outcome.value, 0.0);
  EXPECT_LE(outcome.value, 1.0);
}

TEST(ResilientEval, PaperScaleFallsBackToConvolution) {
  const DcsScenario s = paper_scale_scenario();
  const ResilientEvaluator eval(s, {});
  const DtrPolicy policy = make_two_server_policy(20, 0);
  const EvalOutcome outcome = eval.evaluate(policy);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.tier, EvalTier::kConvolution);
  EXPECT_TRUE(tier_declined(outcome, EvalTier::kRegenerative));
  // The fallback answer is the exact solver's answer, not an approximation.
  const core::ConvolutionSolver direct;
  EXPECT_NEAR(outcome.value,
              direct.reliability(core::apply_policy(s, policy)), 1e-9);
}

TEST(ResilientEval, StarvedConvolutionFallsBackToMarkovian) {
  const DcsScenario s = paper_scale_scenario();
  ResilientEvalOptions options;
  options.convolution.budget.max_seconds = 1e-7;
  const ResilientEvaluator eval(s, options);
  const DtrPolicy policy = make_two_server_policy(0, 0);
  const EvalOutcome outcome = eval.evaluate(policy);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.tier, EvalTier::kMarkovian);
  EXPECT_TRUE(tier_declined(outcome, EvalTier::kRegenerative));
  EXPECT_TRUE(tier_declined(outcome, EvalTier::kConvolution));
  // All laws are exponential, so the Markovian tier is exact here.
  const core::MarkovianSolver direct(s);
  EXPECT_NEAR(outcome.value, direct.reliability(policy), 1e-9);
}

TEST(ResilientEval, StateCapFallsBackToMonteCarlo) {
  ResilientEvalOptions options;
  options.convolution.budget.max_seconds = 1e-7;
  options.markovian_max_states = 1;
  options.monte_carlo.replications = 400;
  const ResilientEvaluator eval(paper_scale_scenario(), options);
  const EvalOutcome outcome = eval.evaluate(make_two_server_policy(0, 0));
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.tier, EvalTier::kMonteCarlo);
  EXPECT_EQ(outcome.failures.size(), 3u);
  EXPECT_GT(outcome.value, 0.0);
  EXPECT_LT(outcome.value, 1.0);
}

TEST(ResilientEval, MarkovianRefusesNonMemorylessWhenApproximationOff) {
  // Uniform service is not memoryless: with the approximation disallowed
  // the Markovian tier must decline rather than silently exponentialize.
  std::vector<ServerSpec> servers = {
      {30, std::make_shared<dist::Uniform>(0.0, 4.0),
       dist::Exponential::with_mean(100.0)},
      {20, std::make_shared<dist::Uniform>(0.0, 2.0),
       dist::Exponential::with_mean(80.0)}};
  const DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(2.0),
      dist::Exponential::with_mean(0.2));
  ResilientEvalOptions options;
  options.try_regenerative = false;
  options.convolution.budget.max_seconds = 1e-7;
  options.allow_markovian_approximation = false;
  options.monte_carlo.replications = 300;
  const ResilientEvaluator eval(s, options);
  const EvalOutcome outcome = eval.evaluate(make_two_server_policy(5, 0));
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.tier, EvalTier::kMonteCarlo);
  EXPECT_FALSE(tier_declined(outcome, EvalTier::kRegenerative));  // skipped
  EXPECT_TRUE(tier_declined(outcome, EvalTier::kMarkovian));
}

TEST(ResilientEval, TotalFailureReportsOkFalseWithoutThrowing) {
  // Deterministic failure at t = 1 before any 2 s service completes: no
  // replication ever finishes, so the mean execution time has no support
  // and even the Monte-Carlo tier declines.
  std::vector<ServerSpec> servers = {
      {3, std::make_shared<dist::Deterministic>(2.0),
       std::make_shared<dist::Deterministic>(1.0)}};
  DcsScenario s;
  s.servers = std::move(servers);
  s.transfer = {{nullptr}};
  ResilientEvalOptions options;
  options.objective = Objective::kMeanExecutionTime;
  options.try_regenerative = false;
  options.convolution.budget.max_seconds = 1e-7;
  options.markovian_max_states = 1;
  options.monte_carlo.replications = 50;
  const ResilientEvaluator eval(s, options);
  EvalOutcome outcome;
  ASSERT_NO_THROW(outcome = eval.evaluate(DtrPolicy(1)));
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.failures.size(), 3u);

  // The search adapter turns total failure into the worst value so a
  // minimizing sweep simply avoids the policy.
  const PolicyEvaluator as_eval = eval.as_policy_evaluator();
  EXPECT_TRUE(std::isinf(as_eval(DtrPolicy(1))));
  EXPECT_GT(as_eval(DtrPolicy(1)), 0.0);
}

TEST(ResilientEval, QosObjectiveRequiresDeadline) {
  ResilientEvalOptions options;
  options.objective = Objective::kQos;
  EXPECT_THROW(ResilientEvaluator(tiny_scenario(), options),
               InvalidArgument);
  options.deadline = 10.0;
  EXPECT_NO_THROW(ResilientEvaluator(tiny_scenario(), options));
}

TEST(ResilientEval, QosAgreesAcrossChainOnTinyScenario) {
  const DcsScenario s = tiny_scenario();
  ResilientEvalOptions options;
  options.objective = Objective::kQos;
  options.deadline = 6.0;
  const ResilientEvaluator eval(s, options);
  const EvalOutcome outcome = eval.evaluate(DtrPolicy(2));
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.tier, EvalTier::kRegenerative);
  EXPECT_GT(outcome.value, 0.0);
  EXPECT_LT(outcome.value, 1.0);
}

TEST(ResilientEval, TallyAccumulatesAnswersAndDeclines) {
  ResilientEvalOptions options;
  options.convolution.budget.max_seconds = 1e-7;
  options.markovian_max_states = 1;
  options.monte_carlo.replications = 200;
  const ResilientEvaluator eval(paper_scale_scenario(), options);
  EvalTally tally;
  for (int l12 = 0; l12 <= 10; l12 += 5) {
    tally.record(eval.evaluate(make_two_server_policy(l12, 0)));
  }
  EXPECT_EQ(tally.evaluations, 3u);
  EXPECT_EQ(tally.answered[static_cast<int>(EvalTier::kMonteCarlo)], 3u);
  EXPECT_EQ(tally.declined[static_cast<int>(EvalTier::kRegenerative)], 3u);
  EXPECT_EQ(tally.declined[static_cast<int>(EvalTier::kConvolution)], 3u);
  EXPECT_EQ(tally.declined[static_cast<int>(EvalTier::kMarkovian)], 3u);
  EXPECT_EQ(tally.total_failures, 0u);
}

const TierFailure* find_failure(const EvalOutcome& outcome, EvalTier tier) {
  for (const TierFailure& f : outcome.failures) {
    if (f.tier == tier) return &f;
  }
  return nullptr;
}

TEST(ResilientEval, DepthBudgetDeclineIsClassifiedAsDepth) {
  // Paper scale exceeds the regenerative tier's depth cap long before its
  // 0.5 s wall budget: the decline must name the structural axis.
  const ResilientEvaluator eval(paper_scale_scenario(), {});
  const EvalOutcome outcome = eval.evaluate(make_two_server_policy(20, 0));
  ASSERT_TRUE(outcome.ok);
  const TierFailure* regen = find_failure(outcome, EvalTier::kRegenerative);
  ASSERT_NE(regen, nullptr);
  EXPECT_EQ(regen->cause, FailureCause::kDepthBudget);
  EXPECT_NE(outcome.describe().find("regenerative declined [depth budget]"),
            std::string::npos);
}

TEST(ResilientEval, WallBudgetDeclineIsClassifiedAsWall) {
  ResilientEvalOptions options;
  options.try_regenerative = false;
  options.convolution.budget.max_seconds = 1e-7;  // starved: wall overrun
  const ResilientEvaluator eval(paper_scale_scenario(), options);
  const EvalOutcome outcome = eval.evaluate(make_two_server_policy(0, 0));
  ASSERT_TRUE(outcome.ok);
  const TierFailure* conv = find_failure(outcome, EvalTier::kConvolution);
  ASSERT_NE(conv, nullptr);
  EXPECT_EQ(conv->cause, FailureCause::kWallBudget);
  EXPECT_NE(outcome.describe().find("convolution declined [wall budget]"),
            std::string::npos);
}

TEST(ResilientEval, StateCapDeclineIsClassifiedAsDepth) {
  ResilientEvalOptions options;
  options.try_regenerative = false;
  options.convolution.budget.max_seconds = 1e-7;
  options.markovian_max_states = 1;
  options.monte_carlo.replications = 200;
  const ResilientEvaluator eval(paper_scale_scenario(), options);
  const EvalOutcome outcome = eval.evaluate(make_two_server_policy(0, 0));
  ASSERT_TRUE(outcome.ok);
  const TierFailure* markov = find_failure(outcome, EvalTier::kMarkovian);
  ASSERT_NE(markov, nullptr);
  EXPECT_EQ(markov->cause, FailureCause::kDepthBudget);
}

TEST(ResilientEval, TallySplitsDeclinesByBudgetAxis) {
  ResilientEvalOptions options;
  options.convolution.budget.max_seconds = 1e-7;
  options.markovian_max_states = 1;
  options.monte_carlo.replications = 200;
  const ResilientEvaluator eval(paper_scale_scenario(), options);
  EvalTally tally;
  tally.record(eval.evaluate(make_two_server_policy(10, 0)));
  // regenerative: depth cap; convolution: wall starvation; markovian:
  // state cap (structural, i.e. depth axis).
  EXPECT_EQ(tally.declined_depth_budget, 2u);
  EXPECT_EQ(tally.declined_wall_budget, 1u);
}

TEST(ResilientEval, FallbackCausesAreCountedAsMetrics) {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::global();
  ResilientEvalOptions options;
  options.convolution.budget.max_seconds = 1e-7;
  options.markovian_max_states = 1;
  options.monte_carlo.replications = 200;
  const ResilientEvaluator eval(paper_scale_scenario(), options);
  metrics::set_enabled(true);
  registry.reset();
  const EvalOutcome outcome = eval.evaluate(make_two_server_policy(0, 0));
  metrics::set_enabled(false);
  ASSERT_TRUE(outcome.ok);
  const metrics::Counter* wall =
      registry.find_counter("resilient.fallback_wall_budget_total");
  const metrics::Counter* depth =
      registry.find_counter("resilient.fallback_depth_budget_total");
  const metrics::Counter* answered =
      registry.find_counter("resilient.answered.monte_carlo");
  ASSERT_NE(wall, nullptr);
  ASSERT_NE(depth, nullptr);
  ASSERT_NE(answered, nullptr);
  EXPECT_EQ(wall->value(), 1u);   // convolution starved on wall clock
  EXPECT_EQ(depth->value(), 2u);  // regen depth cap + markovian state cap
  EXPECT_EQ(answered->value(), 1u);
  registry.reset();
}

TEST(ResilientEval, DescribeNamesAnsweringTierAndReasons) {
  ResilientEvalOptions options;
  options.convolution.budget.max_seconds = 1e-7;
  const ResilientEvaluator eval(paper_scale_scenario(), options);
  const std::string text =
      eval.evaluate(make_two_server_policy(0, 0)).describe();
  EXPECT_NE(text.find("markovian answered"), std::string::npos);
  EXPECT_NE(text.find("regenerative declined"), std::string::npos);
  EXPECT_NE(text.find("convolution declined"), std::string::npos);
}

}  // namespace
}  // namespace agedtr::policy
