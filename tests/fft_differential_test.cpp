// Differential fft-vs-direct harness: every result the FFT convolution
// path produces is re-derived through the forced direct O(n·m) time-domain
// backend — the slow exact reference with identical truncation/tail
// semantics — and pinned together at rtol 1e-9.
//
// This is the trust anchor for the frequency-domain plan cache
// (docs/FFT_PIPELINE.md): the k-fold SumIid ladders, the LatticeWorkspace
// power ladder, pairwise lattice convolutions on randomized mass vectors,
// and full ConvolutionSolver metrics are all exercised across the dist
// families (exponential, Weibull, Pareto, hyperexponential, phase-type,
// empirical). Comparisons run on distribution functions (CDF, tail, mean),
// which carry O(1) scale, so rtol 1e-9 genuinely bounds the transform's
// round-off; raw per-cell mass can sit below the 1e-15 absolute noise
// floor where a relative check would be vacuous or impossible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/lattice_workspace.hpp"
#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/empirical.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/hyperexponential.hpp"
#include "agedtr/dist/lattice_bridge.hpp"
#include "agedtr/dist/pareto.hpp"
#include "agedtr/dist/phase_type.hpp"
#include "agedtr/dist/weibull.hpp"
#include "agedtr/numerics/fft.hpp"
#include "agedtr/numerics/lattice.hpp"
#include "agedtr/random/rng.hpp"

namespace agedtr {
namespace {

using numerics::ConvolutionBackend;
using numerics::LatticeDensity;

constexpr double kRtol = 1e-9;

/// Forces a convolution backend for the test's scope; restores kAuto.
class BackendGuard {
 public:
  explicit BackendGuard(ConvolutionBackend backend) {
    numerics::set_convolution_backend(backend);
  }
  ~BackendGuard() {
    numerics::set_convolution_backend(ConvolutionBackend::kAuto);
  }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;
};

/// Runs `f` under both forced backends and returns {fft, direct}.
template <typename F>
auto both_backends(F&& f) {
  struct Pair {
    decltype(f()) fft;
    decltype(f()) direct;
  };
  BackendGuard fft_guard(ConvolutionBackend::kFft);
  auto via_fft = f();
  numerics::set_convolution_backend(ConvolutionBackend::kDirect);
  auto via_direct = f();
  return Pair{std::move(via_fft), std::move(via_direct)};
}

void expect_densities_match(const LatticeDensity& fft,
                            const LatticeDensity& direct,
                            const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(fft.size(), direct.size());
  ASSERT_DOUBLE_EQ(fft.dt(), direct.dt());
  for (std::size_t i = 0; i < fft.size(); ++i) {
    // CDFs have O(1) scale: rtol against the exact direct value with a
    // floor at the round-off of summing ~1e5 doubles.
    const double tol = kRtol * std::max(direct.cdf(i), 1e-3);
    ASSERT_NEAR(fft.cdf(i), direct.cdf(i), tol) << "cell " << i;
  }
  EXPECT_NEAR(fft.tail(), direct.tail(), kRtol * std::max(direct.tail(), 1e-3));
  EXPECT_NEAR(fft.grid_mean(), direct.grid_mean(),
              kRtol * std::max(std::fabs(direct.grid_mean()), 1e-3));
  EXPECT_NEAR(fft.total(), direct.total(), kRtol);
}

struct FamilyCase {
  std::string label;
  dist::DistPtr law;
};

std::vector<FamilyCase> families() {
  // One representative per family named in the issue; empirical gets a
  // deterministic pseudo-sample cloud so the discretized mass is jagged
  // (the hardest case for transform round-off).
  std::vector<double> samples;
  random::Rng rng(20260808);
  for (int i = 0; i < 400; ++i) {
    samples.push_back(0.05 + 2.5 * rng.next_double() * rng.next_double());
  }
  return {
      {"exponential", dist::Exponential::with_mean(1.3)},
      {"weibull", dist::Weibull::with_mean(1.1, 1.6)},
      {"pareto", dist::Pareto::with_mean(1.4, 2.7)},
      {"hyperexponential",
       dist::HyperExponential::with_mean_scv(1.2, 4.0)},
      {"phase_type", dist::PhaseType::coxian({2.0, 1.0, 0.5}, {0.7, 0.4})},
      {"empirical", std::make_shared<dist::Empirical>(samples)},
  };
}

class FftDifferential : public ::testing::TestWithParam<FamilyCase> {
 protected:
  // 512 cells: the smallest grid where kAuto takes the FFT path, keeping
  // the forced-direct reference ladder affordable.
  static constexpr std::size_t kCells = 512;
  static constexpr double kDt = 0.02;
};

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FftDifferential, ::testing::ValuesIn(families()),
    [](const ::testing::TestParamInfo<FamilyCase>& param_info) {
      return param_info.param.label;
    });

TEST_P(FftDifferential, KFoldLadderMatchesDirect) {
  // Randomized k-fold ladder: exponent-doubling exercises both the
  // self-convolve squarings and the mixed-rung compositions.
  random::Rng rng(815 + static_cast<std::uint64_t>(GetParam().label.size()));
  std::vector<unsigned> ks = {2, 3, 7};
  for (int draw = 0; draw < 3; ++draw) {
    ks.push_back(2 + static_cast<unsigned>(rng.next_double() * 29.0));
  }
  const LatticeDensity base = dist::discretize(*GetParam().law, kDt, kCells);
  for (unsigned k : ks) {
    const auto got = both_backends(
        [&] { return base.convolve_power(k); });
    expect_densities_match(got.fft, got.direct,
                           GetParam().label + " k=" + std::to_string(k));
  }
}

TEST_P(FftDifferential, WorkspaceLadderMatchesDirect) {
  // The production ladder: separate workspaces per backend so each builds
  // its rungs (and, on the FFT side, cached spectra) from scratch.
  for (unsigned k : {2u, 5u, 13u, 28u}) {
    const auto got = both_backends([&] {
      core::LatticeWorkspace workspace;
      return workspace.sum(GetParam().law, k, kDt, kCells);
    });
    expect_densities_match(got.fft, got.direct,
                           GetParam().label + " workspace k=" +
                               std::to_string(k));
  }
}

TEST_P(FftDifferential, SolverMetricsMatchDirect) {
  // End-to-end: a 2-server workload with an inbound group, evaluated
  // through every ConvolutionSolver metric under both backends.
  const dist::DistPtr transfer = dist::Exponential::with_mean(0.8);
  const auto evaluate = [&] {
    core::ConvolutionOptions options;
    options.cells = kCells;
    const core::ConvolutionSolver solver(options);
    std::vector<core::ServerWorkload> workloads(2);
    workloads[0].service = GetParam().law;
    workloads[0].local_tasks = 9;
    workloads[1].service = GetParam().law;
    workloads[1].local_tasks = 3;
    workloads[1].inbound.push_back({6, transfer, /*per_task=*/true});
    struct Result {
      double mean, qos, variance;
    };
    const auto law = solver.execution_time_law(workloads);
    return Result{solver.mean_execution_time(workloads),
                  solver.qos(workloads, 0.6 * law.mean),
                  law.variance};
  };
  const auto got = both_backends(evaluate);
  EXPECT_NEAR(got.fft.mean, got.direct.mean,
              kRtol * std::fabs(got.direct.mean));
  EXPECT_NEAR(got.fft.variance, got.direct.variance,
              kRtol * std::max(std::fabs(got.direct.variance), 1e-3));
  EXPECT_NEAR(got.fft.qos, got.direct.qos,
              kRtol * std::max(got.direct.qos, 1e-3));
}

TEST(FftDifferentialRandom, RandomMassVectorsMatchDirect) {
  // Raw convolve() on randomized (non-probability) vectors, odd lengths
  // included, so the zero-padding and truncation edges get hit away from
  // the lattice invariants.
  random::Rng rng(424242);
  for (const std::size_t na : {65ul, 257ul, 300ul, 1024ul}) {
    for (const std::size_t nb : {64ul, 299ul, 1023ul}) {
      std::vector<double> a(na), b(nb);
      for (double& x : a) x = rng.next_double() / static_cast<double>(na);
      for (double& x : b) x = rng.next_double() / static_cast<double>(nb);
      const auto got = both_backends(
          [&] { return numerics::convolve(a, b); });
      ASSERT_EQ(got.fft.size(), got.direct.size());
      double scale = 0.0;
      for (double v : got.direct) scale = std::max(scale, std::fabs(v));
      for (std::size_t i = 0; i < got.direct.size(); ++i) {
        ASSERT_NEAR(got.fft[i], got.direct[i], kRtol * scale)
            << na << "x" << nb << " cell " << i;
      }
    }
  }
}

TEST(FftDifferentialRandom, BackendToggleRoundTrips) {
  EXPECT_EQ(numerics::convolution_backend(), ConvolutionBackend::kAuto);
  {
    BackendGuard guard(ConvolutionBackend::kDirect);
    EXPECT_EQ(numerics::convolution_backend(), ConvolutionBackend::kDirect);
    EXPECT_TRUE(numerics::use_direct_convolution(4096, 4096));
  }
  EXPECT_EQ(numerics::convolution_backend(), ConvolutionBackend::kAuto);
  EXPECT_FALSE(numerics::use_direct_convolution(4096, 4096));
  EXPECT_TRUE(numerics::use_direct_convolution(64, 64));
  {
    BackendGuard guard(ConvolutionBackend::kFft);
    EXPECT_FALSE(numerics::use_direct_convolution(64, 64));
    EXPECT_TRUE(numerics::use_direct_convolution(1, 1));  // no n>=2 transform
  }
}

}  // namespace
}  // namespace agedtr
