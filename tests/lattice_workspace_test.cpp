// core::LatticeWorkspace: the shared cache substrate under every
// lattice-based solver — counter accounting, grid keying, the lifetime
// pinning that makes address keys sound, and coherence under concurrent
// access (the ThreadSanitizer target of scripts/run_sanitizers.sh).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/lattice_workspace.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/numerics/fft.hpp"
#include "agedtr/numerics/lattice.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr::core {
namespace {

using numerics::LatticeDensity;

TEST(LatticeWorkspace, BaseHitMissAccounting) {
  LatticeWorkspace ws;
  const auto law = dist::Exponential::with_mean(2.0);
  const LatticeDensity& a = ws.base(law, 0.1, 256);
  EXPECT_EQ(ws.stats().base_misses, 1u);
  EXPECT_EQ(ws.stats().base_hits, 0u);
  const LatticeDensity& b = ws.base(law, 0.1, 256);
  EXPECT_EQ(&a, &b);  // the reference is stable across lookups
  EXPECT_EQ(ws.stats().base_hits, 1u);
  EXPECT_EQ(ws.stats().base_misses, 1u);
  // A different grid is a different entry, even for the same law.
  (void)ws.base(law, 0.2, 256);
  (void)ws.base(law, 0.1, 512);
  EXPECT_EQ(ws.stats().base_misses, 3u);
  EXPECT_EQ(ws.stats().laws, 3u);
  EXPECT_GT(ws.stats().bytes, 0u);
}

TEST(LatticeWorkspace, SumMatchesDirectConvolutionPower) {
  LatticeWorkspace ws;
  const auto law = dist::Exponential::with_mean(1.0);
  const LatticeDensity direct = ws.base(law, 0.05, 512).convolve_power(5);
  const LatticeDensity cached = ws.sum(law, 5, 0.05, 512);
  ASSERT_EQ(cached.size(), direct.size());
  for (std::size_t i = 0; i < cached.size(); ++i) {
    EXPECT_NEAR(cached.mass(i), direct.mass(i), 1e-12);
  }
  EXPECT_NEAR(cached.tail(), direct.tail(), 1e-12);
  // The second identical lookup is a pure hit: no new bytes.
  const WorkspaceStats before = ws.stats();
  (void)ws.sum(law, 5, 0.05, 512);
  EXPECT_EQ(ws.stats().sum_hits, before.sum_hits + 1);
  EXPECT_EQ(ws.stats().sum_misses, before.sum_misses);
  EXPECT_EQ(ws.stats().bytes, before.bytes);
}

TEST(LatticeWorkspace, TrivialFoldCounts) {
  LatticeWorkspace ws;
  const auto law = dist::Exponential::with_mean(1.0);
  const LatticeDensity zero = ws.sum(law, 0, 0.1, 128);
  EXPECT_NEAR(zero.mass(0), 1.0, 1e-15);
  EXPECT_NEAR(zero.grid_mean(), 0.0, 1e-15);
  const LatticeDensity one = ws.sum(law, 1, 0.1, 128);
  const LatticeDensity& base = ws.base(law, 0.1, 128);
  ASSERT_EQ(one.size(), base.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one.mass(i), base.mass(i));
  }
}

TEST(LatticeWorkspace, ClearDropsEntriesAndCounters) {
  LatticeWorkspace ws;
  const auto law = dist::Exponential::with_mean(1.5);
  (void)ws.sum(law, 3, 0.1, 256);
  EXPECT_GT(ws.stats().bytes, 0u);
  ws.clear();
  const WorkspaceStats cleared = ws.stats();
  EXPECT_EQ(cleared.hits() + cleared.misses(), 0u);
  EXPECT_EQ(cleared.bytes, 0u);
  EXPECT_EQ(cleared.laws, 0u);
  // Re-querying after clear() is a miss again, not stale state.
  (void)ws.base(law, 0.1, 256);
  EXPECT_EQ(ws.stats().base_misses, 1u);
}

TEST(LatticeWorkspace, PinsLawsAgainstAddressReuse) {
  // Entries key on the law's address; the entry's shared_ptr pin is what
  // makes that sound: a pinned address cannot be handed to a new
  // distribution while the entry lives, so churned allocations can never
  // alias a cached key (the ABA hazard the pre-workspace per-solver caches
  // were exposed to through short-lived exponentials).
  LatticeWorkspace ws;
  const dist::Distribution* pinned = nullptr;
  {
    const auto law = dist::Exponential::with_mean(3.0);
    pinned = law.get();
    (void)ws.base(law, 0.1, 256);
  }  // caller's last reference dropped; only the workspace pin remains
  for (int i = 0; i < 64; ++i) {
    const auto churn = dist::Exponential::with_mean(9.0);
    EXPECT_NE(churn.get(), pinned);
  }
  EXPECT_EQ(ws.stats().laws, 1u);
}

TEST(LatticeWorkspace, SharedAcrossSolversServesHits) {
  // Two solvers on one workspace: the second does no lattice work of its
  // own and reproduces the first's metric bit-identically.
  const auto ws = std::make_shared<LatticeWorkspace>();
  ConvolutionOptions options;
  options.cells = 1024;
  options.horizon = 50.0;
  ServerWorkload w;
  w.local_tasks = 6;
  w.service = dist::Exponential::with_mean(1.0);
  const std::vector<ServerWorkload> workloads = {w};

  const ConvolutionSolver first(options, ws);
  const double a = first.mean_execution_time(workloads);
  const WorkspaceStats after_first = ws->stats();
  EXPECT_GT(after_first.misses(), 0u);

  const ConvolutionSolver second(options, ws);
  const double b = second.mean_execution_time(workloads);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ws->stats().misses(), after_first.misses());
  EXPECT_GT(ws->stats().hits(), after_first.hits());
}

TEST(LatticeWorkspace, ConcurrentMixedAccessIsCoherent) {
  // The TSan target: four threads hammer one workspace with overlapping
  // base/sum queries across interleaved grids and fold counts while also
  // reading stats(). Every answer must match a serial recomputation.
  const auto workspace = std::make_shared<LatticeWorkspace>();
  const auto fast = dist::Exponential::with_mean(1.0);
  const auto slow = dist::Exponential::with_mean(4.0);
  // Explicit 4-thread pool: the global pool is sized by hardware
  // concurrency and may be a single worker on small CI machines.
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  std::vector<double> means(kTasks, 0.0);
  pool.parallel_for(0, kTasks, [&](std::size_t t) {
    const auto& law = (t % 2 == 0) ? fast : slow;
    const double dt = (t % 3 == 0) ? 0.05 : 0.1;
    const unsigned k = static_cast<unsigned>(1 + t % 7);
    means[t] = workspace->sum(law, k, dt, 512).grid_mean();
    (void)workspace->base(law, dt, 512);
    (void)workspace->stats();
  });

  LatticeWorkspace serial;
  for (std::size_t t = 0; t < kTasks; ++t) {
    const auto& law = (t % 2 == 0) ? fast : slow;
    const double dt = (t % 3 == 0) ? 0.05 : 0.1;
    const unsigned k = static_cast<unsigned>(1 + t % 7);
    EXPECT_NEAR(means[t], serial.sum(law, k, dt, 512).grid_mean(), 1e-12)
        << "task " << t;
  }
  const WorkspaceStats stats = workspace->stats();
  EXPECT_EQ(stats.laws, 4u);  // 2 laws × 2 grids
  // One sum + one base lookup per task (k == 1 sums count as base
  // lookups), each a hit or a miss — nothing lost under contention.
  EXPECT_EQ(stats.hits() + stats.misses(), 2 * kTasks);
}

/// The cost-model assertion for the FFT plan cache (the lookup every
/// spectrum build and frequency-domain convolution pays): a warm lookup is
/// one countr_zero + one relaxed-acquire load, so it must stay within a
/// generous constant factor of a bare loop. The bound is deliberately loose
/// (CI machines are noisy); bench/micro_kernels gives the precise numbers.
TEST(LatticeWorkspace, WarmPlanLookupIsCheap) {
  (void)numerics::fft_plan(1024);  // warm the slot
  constexpr int kIters = 2'000'000;
  using Clock = std::chrono::steady_clock;

  volatile std::uint64_t sink = 0;
  const auto t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    sink = sink + 1;
  }
  const double baseline =
      std::chrono::duration<double>(Clock::now() - t0).count();

  const auto t1 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    sink = sink + numerics::fft_plan(1024).size();
  }
  const double warm =
      std::chrono::duration<double>(Clock::now() - t1).count();

  // Allow 20x the bare loop plus an absolute floor so micro-noise on a
  // loaded machine cannot flake.
  EXPECT_LT(warm, baseline * 20.0 + 0.05);
}

}  // namespace
}  // namespace agedtr::core
