// End-to-end integration tests: scaled-down versions of the paper's
// experiments, checking the *shape* conclusions the full benches reproduce:
//   - the Markovian approximation is good under low network delay and poor
//     under severe delay (Figs. 1–2),
//   - Markovian-devised policies degrade the true metrics (Table I),
//   - Algorithm 1 beats no reallocation on multi-server systems (Table II),
//   - the testbed pipeline (measure → fit → optimize → validate) closes the
//     loop between theory, simulation and "experiment" (Fig. 4).
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/core/convolution.hpp"
#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/algorithm1.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/testbed/testbed.hpp"

namespace agedtr {
namespace {

using core::DcsScenario;
using core::DtrPolicy;
using core::ServerSpec;
using dist::ModelFamily;

// Scaled-down Section III-A setup: heterogeneous pair, fixed L21 share.
DcsScenario paper_like_scenario(ModelFamily family, double transfer_mean,
                                double fn_mean, bool failures,
                                int m1 = 20, int m2 = 10) {
  std::vector<ServerSpec> servers = {
      {m1, dist::make_model_distribution(family, 2.0),
       failures ? dist::Exponential::with_mean(200.0) : nullptr},
      {m2, dist::make_model_distribution(family, 1.0),
       failures ? dist::Exponential::with_mean(100.0) : nullptr}};
  return core::make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(family, transfer_mean),
      dist::Exponential::with_mean(fn_mean));
}

double max_relative_error_over_sweep(ModelFamily family, double transfer_mean,
                                     int l21) {
  const DcsScenario truth =
      paper_like_scenario(family, transfer_mean, 0.2, false);
  const policy::PolicyEvaluator exact = policy::make_age_dependent_evaluator(
      truth, policy::Objective::kMeanExecutionTime);
  const policy::PolicyEvaluator markov = policy::make_age_dependent_evaluator(
      policy::exponentialized(truth), policy::Objective::kMeanExecutionTime);
  double worst = 0.0;
  for (int l12 = 0; l12 <= 20; l12 += 4) {
    const DtrPolicy p = policy::make_two_server_policy(l12, l21);
    const double t = exact(p);
    worst = std::max(worst, std::fabs(markov(p) - t) / t);
  }
  return worst;
}

TEST(Integration, Fig1MarkovianAccuracyDegradesWithDelay) {
  // Low delay: transfer+service at the fast server ≈ service at the slow
  // one (Z̄ = 1); severe: ≥ 5× (Z̄ = 9).
  const double low = max_relative_error_over_sweep(ModelFamily::kPareto1,
                                                   1.0, 5);
  const double severe = max_relative_error_over_sweep(ModelFamily::kPareto1,
                                                      9.0, 5);
  EXPECT_LT(low, 0.06);
  EXPECT_GT(severe, 1.5 * low);
}

TEST(Integration, Fig1ShiftedExponentialSameShape) {
  const double low = max_relative_error_over_sweep(
      ModelFamily::kShiftedExponential, 1.0, 5);
  const double severe = max_relative_error_over_sweep(
      ModelFamily::kShiftedExponential, 9.0, 5);
  EXPECT_GT(severe, low);
}

TEST(Integration, Fig2ReliabilityErrorLargerUnderSevereDelay) {
  const auto reliability_error = [](double transfer_mean) {
    const DcsScenario truth = paper_like_scenario(ModelFamily::kPareto1,
                                                  transfer_mean, 0.2, true);
    const policy::PolicyEvaluator exact =
        policy::make_age_dependent_evaluator(truth,
                                             policy::Objective::kReliability);
    const policy::PolicyEvaluator markov =
        policy::make_age_dependent_evaluator(policy::exponentialized(truth),
                                             policy::Objective::kReliability);
    double worst = 0.0;
    for (int l12 = 0; l12 <= 20; l12 += 5) {
      const DtrPolicy p = policy::make_two_server_policy(l12, 5);
      const double r = exact(p);
      if (r > 1e-6) {
        worst = std::max(worst, std::fabs(markov(p) - r) / r);
      }
    }
    return worst;
  };
  EXPECT_GT(reliability_error(9.0), reliability_error(1.0));
}

TEST(Integration, TableIMarkovianPolicyDegradesTrueMetric) {
  // Severe delay, infinite-variance service: devise under the exponential
  // model, evaluate under the truth, compare with the true optimum.
  const DcsScenario truth =
      paper_like_scenario(ModelFamily::kPareto2, 9.0, 1.0, false);
  const policy::PolicyEvaluator exact = policy::make_age_dependent_evaluator(
      truth, policy::Objective::kMeanExecutionTime);
  const policy::PolicyEvaluator markov = policy::make_age_dependent_evaluator(
      policy::exponentialized(truth), policy::Objective::kMeanExecutionTime);
  const policy::TwoServerPolicySearch search(20, 10);
  ThreadPool pool(4);
  const auto best_true = search.optimize(exact, false, &pool);
  const auto best_markov = search.optimize(markov, false, &pool);
  const double degraded =
      exact(policy::make_two_server_policy(best_markov.l12, best_markov.l21));
  // By optimality the Markovian-devised policy can never beat the true
  // optimum; the magnitude of the gap at paper scale is the business of
  // bench/table1_optimal_policies (the paper reports 10-40% there). At this
  // reduced scale we assert the ordering and that the Markovian model
  // mis-estimates the metric itself.
  EXPECT_GE(degraded, best_true.value - 1e-9);
  const double markov_estimate =
      markov(policy::make_two_server_policy(best_markov.l12, best_markov.l21));
  EXPECT_GT(std::fabs(markov_estimate - degraded) / degraded, 0.01);
}

TEST(Integration, TableIQosOptimumNearMeanOptimum) {
  const DcsScenario truth =
      paper_like_scenario(ModelFamily::kPareto1, 1.0, 0.2, false);
  const policy::PolicyEvaluator mean_eval =
      policy::make_age_dependent_evaluator(
          truth, policy::Objective::kMeanExecutionTime);
  const policy::TwoServerPolicySearch search(20, 10);
  ThreadPool pool(4);
  const auto best_mean = search.optimize(mean_eval, false, &pool);
  const policy::PolicyEvaluator qos_eval =
      policy::make_age_dependent_evaluator(truth, policy::Objective::kQos,
                                           1.3 * best_mean.value);
  const auto best_qos = search.optimize(qos_eval, true, &pool);
  // Policies optimizing the two metrics should sit in the same
  // neighbourhood (Fig. 3's observation), and the QoS at its optimum must
  // be high when the deadline is 30% above the optimal mean.
  EXPECT_NEAR(best_qos.l12, best_mean.l12, 6);
  EXPECT_GT(best_qos.value, 0.7);
}

TEST(Integration, TableIIAlgorithm1BeatsNoReallocationByMc) {
  // Three heterogeneous servers under severe delay; score by simulation
  // (the paper's Table II methodology).
  std::vector<ServerSpec> servers = {
      {40, dist::make_model_distribution(ModelFamily::kPareto1, 4.0),
       nullptr},
      {8, dist::make_model_distribution(ModelFamily::kPareto1, 2.0), nullptr},
      {2, dist::make_model_distribution(ModelFamily::kPareto1, 1.0),
       nullptr}};
  const DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(ModelFamily::kPareto1, 5.0),
      dist::Exponential::with_mean(1.0));
  policy::Algorithm1Options opts;
  opts.objective = policy::Objective::kMeanExecutionTime;
  const auto result = policy::Algorithm1(opts).devise(s);
  sim::MonteCarloOptions mc;
  mc.replications = 8'000;
  mc.seed = 21;
  const auto with_policy = sim::run_monte_carlo(s, result.policy, mc);
  const auto without = sim::run_monte_carlo(s, DtrPolicy(3), mc);
  ASSERT_TRUE(with_policy.all_completed);
  EXPECT_LT(with_policy.mean_completion_time.center,
            without.mean_completion_time.center);
}

TEST(Integration, Fig4PipelineTheorySimulationExperimentAgree) {
  // The full Section III-B loop at reduced replication counts.
  const testbed::CharacterizedTestbed ct = testbed::characterize_testbed(
      3000, 31);
  // Theory (fitted laws) for the paper's policy neighbourhood.
  const core::ConvolutionSolver theory;
  const DtrPolicy paper_policy = policy::make_two_server_policy(26, 0);
  const double predicted =
      theory.reliability(core::apply_policy(ct.fitted, paper_policy));
  // MC at the fitted laws.
  sim::MonteCarloOptions mc;
  mc.replications = 10'000;
  mc.seed = 32;
  const auto simulated = sim::run_monte_carlo(ct.fitted, paper_policy, mc);
  EXPECT_NEAR(predicted, simulated.reliability.center,
              std::max(0.02, 4.0 * simulated.reliability.half_width()));
  // "Experiment" on the ground truth: the paper saw < 7% relative error
  // between prediction and experiment; grant a similar budget plus the
  // finite-sample fitting error.
  const auto experiment = testbed::run_experiment(
      testbed::make_testbed_scenario(), paper_policy, 500, 33);
  EXPECT_NEAR(predicted, experiment.center, 0.10);
}

TEST(Integration, Fig4OptimalPolicyNeighbourhood) {
  // The fitted-model optimum should land near the paper's L12 = 26 (about
  // half the slow server's queue) with L21 = 0.
  const testbed::CharacterizedTestbed ct =
      testbed::characterize_testbed(3000, 41);
  const policy::PolicyEvaluator eval = policy::make_age_dependent_evaluator(
      ct.fitted, policy::Objective::kReliability);
  const policy::TwoServerPolicySearch search(50, 25);
  ThreadPool pool(4);
  // Search the L21 = 0 line (the paper's optimum has L21 = 0).
  const auto line = search.sweep_l12(eval, 0, &pool);
  const auto best = std::max_element(
      line.begin(), line.end(),
      [](const auto& a, const auto& b) { return a.value < b.value; });
  // The landscape is a knife-edge (see testbed_test): rather than pin the
  // argmax, require the paper's policy to sit within 0.03 of the optimum
  // and reallocation to beat doing nothing.
  EXPECT_GE(line[26].value, best->value - 0.03);
  EXPECT_GE(best->value, line[0].value);
}

}  // namespace
}  // namespace agedtr
