// Dense matrix substrate and the phase-type distribution family.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/gamma.hpp"
#include "agedtr/dist/hyperexponential.hpp"
#include "agedtr/dist/phase_type.hpp"
#include "agedtr/numerics/matrix.hpp"
#include "agedtr/numerics/quadrature.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr {
namespace {

using numerics::Matrix;

TEST(Matrix, ProductAgainstHandComputation) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = 4.0;
  const Matrix sq = a * a;
  EXPECT_DOUBLE_EQ(sq(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(sq(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(sq(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(sq(1, 1), 22.0);
}

TEST(Matrix, IdentityIsNeutral) {
  Matrix a(3, 3);
  a(0, 1) = 2.5;
  a(2, 0) = -1.0;
  a(1, 1) = 4.0;
  const Matrix i = Matrix::identity(3);
  const Matrix left = i * a;
  const Matrix right = a * i;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(left(r, c), a(r, c));
      EXPECT_DOUBLE_EQ(right(r, c), a(r, c));
    }
  }
}

TEST(Matrix, VectorProducts) {
  Matrix a(2, 3);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(0, 2) = 3.0;
  a(1, 0) = 4.0;
  a(1, 1) = 5.0;
  a(1, 2) = 6.0;
  const auto row = a.left_multiply({1.0, 2.0});     // [9, 12, 15]
  const auto col = a.right_multiply({1.0, 1.0, 1.0});  // [6, 15]
  EXPECT_DOUBLE_EQ(row[0], 9.0);
  EXPECT_DOUBLE_EQ(row[2], 15.0);
  EXPECT_DOUBLE_EQ(col[0], 6.0);
  EXPECT_DOUBLE_EQ(col[1], 15.0);
}

TEST(Matrix, SolveDenseRoundTrip) {
  Matrix a(3, 3);
  a(0, 0) = 4.0;
  a(0, 1) = 1.0;
  a(0, 2) = -1.0;
  a(1, 0) = 2.0;
  a(1, 1) = 7.0;
  a(1, 2) = 1.0;
  a(2, 0) = 1.0;
  a(2, 1) = -3.0;
  a(2, 2) = 12.0;
  const std::vector<double> x_true = {1.5, -2.0, 0.25};
  const std::vector<double> b = a.right_multiply(x_true);
  const std::vector<double> x = numerics::solve_dense(a, b);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-12);
  }
}

TEST(Matrix, SolveDenseRejectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(numerics::solve_dense(a, {1.0, 1.0}), InvalidArgument);
}

TEST(MatrixExponential, ScalarCase) {
  Matrix a(1, 1);
  a(0, 0) = -1.7;
  const Matrix e = numerics::matrix_exponential(a);
  EXPECT_NEAR(e(0, 0), std::exp(-1.7), 1e-12);
}

TEST(MatrixExponential, DiagonalCase) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -3.0;
  const Matrix e = numerics::matrix_exponential(a);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-11);
  EXPECT_NEAR(e(1, 1), std::exp(-3.0), 1e-11);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-13);
}

TEST(MatrixExponential, NilpotentCase) {
  // exp([[0, 1], [0, 0]]) = [[1, 1], [0, 1]] exactly.
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  const Matrix e = numerics::matrix_exponential(a);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-13);
  EXPECT_NEAR(e(0, 1), 1.0, 1e-13);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-13);
  EXPECT_NEAR(e(1, 1), 1.0, 1e-13);
}

TEST(MatrixExponential, SemigroupProperty) {
  Matrix a(2, 2);
  a(0, 0) = -2.0;
  a(0, 1) = 1.5;
  a(1, 0) = 0.5;
  a(1, 1) = -1.0;
  const Matrix whole = numerics::matrix_exponential(a);
  const Matrix half = numerics::matrix_exponential(a.scaled(0.5));
  const Matrix composed = half * half;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(composed(r, c), whole(r, c), 1e-11);
    }
  }
}

// ---- PhaseType --------------------------------------------------------------

TEST(PhaseType, SinglePhaseIsExponential) {
  Matrix t(1, 1);
  t(0, 0) = -0.5;
  const dist::PhaseType ph({1.0}, t);
  const dist::Exponential e(0.5);
  for (double x : {0.1, 1.0, 5.0}) {
    EXPECT_NEAR(ph.pdf(x), e.pdf(x), 1e-10) << "x=" << x;
    EXPECT_NEAR(ph.cdf(x), e.cdf(x), 1e-10) << "x=" << x;
  }
  EXPECT_NEAR(ph.mean(), 2.0, 1e-12);
  EXPECT_NEAR(ph.variance(), 4.0, 1e-12);
}

TEST(PhaseType, ErlangMatchesGamma) {
  const dist::DistPtr erl = dist::PhaseType::erlang(4, 2.0);
  const dist::Gamma gamma(4.0, 0.5);
  EXPECT_NEAR(erl->mean(), 2.0, 1e-12);
  EXPECT_NEAR(erl->variance(), 1.0, 1e-12);
  for (double x : {0.5, 2.0, 5.0}) {
    EXPECT_NEAR(erl->pdf(x), gamma.pdf(x), 1e-9) << "x=" << x;
    EXPECT_NEAR(erl->sf(x), gamma.sf(x), 1e-9) << "x=" << x;
  }
}

TEST(PhaseType, HyperexponentialAsPhaseType) {
  // Two parallel phases with no cross transitions = mixture of
  // exponentials.
  Matrix t(2, 2);
  t(0, 0) = -1.0;
  t(1, 1) = -4.0;
  const dist::PhaseType ph({0.3, 0.7}, t);
  const dist::HyperExponential h({0.3, 0.7}, {1.0, 4.0});
  for (double x : {0.2, 1.0, 3.0}) {
    EXPECT_NEAR(ph.pdf(x), h.pdf(x), 1e-9);
    EXPECT_NEAR(ph.sf(x), h.sf(x), 1e-9);
  }
  EXPECT_NEAR(ph.mean(), h.mean(), 1e-12);
}

TEST(PhaseType, PdfIntegratesToOne) {
  const dist::DistPtr cox =
      dist::PhaseType::coxian({2.0, 1.0, 3.0}, {0.8, 0.5});
  const double total = numerics::integrate_to_infinity(
                           [&cox](double x) { return cox->pdf(x); }, 0.0)
                           .value;
  EXPECT_NEAR(total, 1.0, 1e-7);
}

TEST(PhaseType, LaplaceMatchesQuadrature) {
  const dist::DistPtr cox = dist::PhaseType::coxian({1.5, 0.8}, {0.6});
  for (double s : {0.2, 1.0}) {
    const double reference =
        numerics::integrate_to_infinity(
            [&cox, s](double x) { return std::exp(-s * x) * cox->pdf(x); },
            0.0)
            .value;
    EXPECT_NEAR(cox->laplace(s), reference, 1e-7) << "s=" << s;
  }
}

TEST(PhaseType, SamplingMatchesMoments) {
  const dist::DistPtr erl = dist::PhaseType::erlang(3, 1.5);
  random::Rng rng(7);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = erl->sample(rng);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, erl->mean(), 0.02);
  EXPECT_NEAR(sum2 / n - mean * mean, erl->variance(), 0.05);
}

TEST(PhaseType, CoxianEarlyExitShortensMean) {
  // Lower continuation probability ⇒ earlier absorption ⇒ smaller mean.
  const dist::DistPtr sticky = dist::PhaseType::coxian({1.0, 1.0}, {0.9});
  const dist::DistPtr leaky = dist::PhaseType::coxian({1.0, 1.0}, {0.2});
  EXPECT_GT(sticky->mean(), leaky->mean());
}

TEST(PhaseType, RejectsInvalidGenerators) {
  Matrix bad_diag(1, 1);
  bad_diag(0, 0) = 1.0;  // positive diagonal
  EXPECT_THROW(dist::PhaseType({1.0}, bad_diag), InvalidArgument);
  Matrix bad_row(2, 2);
  bad_row(0, 0) = -1.0;
  bad_row(0, 1) = 2.0;  // row sum positive
  bad_row(1, 1) = -1.0;
  EXPECT_THROW(dist::PhaseType({0.5, 0.5}, bad_row), InvalidArgument);
  Matrix ok(1, 1);
  ok(0, 0) = -1.0;
  EXPECT_THROW(dist::PhaseType({0.4}, ok), InvalidArgument);  // α sums to 0.4
}

}  // namespace
}  // namespace agedtr
