// The exact non-Markovian ConvolutionSolver: deterministic closed forms,
// equivalence with the Markovian DP in the exponential case, and agreement
// with Monte Carlo for every comparison model of the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/markovian.hpp"
#include "agedtr/core/ctmc.hpp"
#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/deterministic.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::core {
namespace {

using dist::ModelFamily;

DcsScenario model_scenario(ModelFamily family, std::vector<int> tasks,
                           std::vector<double> service_means,
                           std::vector<double> failure_means,
                           double transfer_mean) {
  std::vector<ServerSpec> servers;
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    servers.push_back(
        {tasks[j], dist::make_model_distribution(family, service_means[j]),
         failure_means.empty()
             ? nullptr
             : dist::Exponential::with_mean(failure_means[j])});
  }
  return make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(family, transfer_mean),
      dist::Exponential::with_mean(0.2));
}

TEST(Convolution, DeterministicSingleServer) {
  ServerWorkload w;
  w.local_tasks = 4;
  w.service = std::make_shared<dist::Deterministic>(2.0);
  const ConvolutionSolver solver;
  EXPECT_NEAR(solver.mean_execution_time({w}), 8.0, 0.02);
}

TEST(Convolution, DeterministicWithInboundGroup) {
  // C = max(2·2, 5) + 1·2 = 7.
  ServerWorkload w;
  w.local_tasks = 2;
  w.service = std::make_shared<dist::Deterministic>(2.0);
  w.inbound.push_back({1, std::make_shared<dist::Deterministic>(5.0)});
  const ConvolutionSolver solver;
  EXPECT_NEAR(solver.mean_execution_time({w}), 7.0, 0.02);
}

TEST(Convolution, DeterministicQosIsStep) {
  ServerWorkload w;
  w.local_tasks = 3;
  w.service = std::make_shared<dist::Deterministic>(1.0);
  const ConvolutionSolver solver;
  EXPECT_NEAR(solver.qos({w}, 10.0), 1.0, 1e-9);
  EXPECT_NEAR(solver.qos({w}, 2.0), 0.0, 1e-9);
}

TEST(Convolution, EmptyServerContributesNothing) {
  ServerWorkload busy;
  busy.local_tasks = 3;
  busy.service = dist::Exponential::with_mean(1.0);
  ServerWorkload idle;
  idle.local_tasks = 0;
  idle.service = dist::Exponential::with_mean(1.0);
  const ConvolutionSolver solver;
  const double with_idle = solver.mean_execution_time({busy, idle});
  const ConvolutionSolver solver2;
  const double alone = solver2.mean_execution_time({busy});
  EXPECT_NEAR(with_idle, alone, 1e-9);
}

TEST(Convolution, MatchesMarkovianMean) {
  const DcsScenario s =
      model_scenario(ModelFamily::kExponential, {12, 6}, {2.0, 1.0}, {}, 1.5);
  DtrPolicy policy(2);
  policy.set(0, 1, 4);
  policy.set(1, 0, 2);
  const MarkovianSolver markovian(s);
  const ConvolutionSolver conv;
  EXPECT_NEAR(conv.mean_execution_time(apply_policy(s, policy)),
              markovian.mean_execution_time(policy), 0.05);
}

TEST(Convolution, MatchesMarkovianReliability) {
  const DcsScenario s = model_scenario(ModelFamily::kExponential, {8, 4},
                                       {2.0, 1.0}, {60.0, 40.0}, 1.5);
  DtrPolicy policy(2);
  policy.set(0, 1, 3);
  const MarkovianSolver markovian(s);
  const ConvolutionSolver conv;
  EXPECT_NEAR(conv.reliability(apply_policy(s, policy)),
              markovian.reliability(policy), 2e-3);
}

TEST(Convolution, MatchesCtmcQos) {
  const DcsScenario s =
      model_scenario(ModelFamily::kExponential, {6, 3}, {2.0, 1.0}, {}, 1.0);
  DtrPolicy policy(2);
  policy.set(0, 1, 2);
  const CtmcTransientSolver ctmc(s, policy);
  const ConvolutionSolver conv;
  const auto workloads = apply_policy(s, policy);
  for (double deadline : {5.0, 12.0, 25.0, 60.0}) {
    EXPECT_NEAR(conv.qos(workloads, deadline), ctmc.qos(deadline), 3e-3)
        << "deadline=" << deadline;
  }
}

struct ModelVsMcCase {
  std::string label;
  ModelFamily family;
  double mean_tol;  // relative tolerance for the mean (heavy tails relax it)
};

class ConvolutionVsMc : public ::testing::TestWithParam<ModelVsMcCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllModels, ConvolutionVsMc,
    ::testing::Values(
        ModelVsMcCase{"Exponential", ModelFamily::kExponential, 0.01},
        ModelVsMcCase{"Pareto1", ModelFamily::kPareto1, 0.01},
        ModelVsMcCase{"Pareto2", ModelFamily::kPareto2, 0.05},
        ModelVsMcCase{"ShiftedExponential",
                      ModelFamily::kShiftedExponential, 0.01},
        ModelVsMcCase{"Uniform", ModelFamily::kUniform, 0.01}),
    [](const ::testing::TestParamInfo<ModelVsMcCase>& param_info) {
      return param_info.param.label;
    });

TEST_P(ConvolutionVsMc, MeanExecutionTime) {
  const DcsScenario s =
      model_scenario(GetParam().family, {20, 10}, {2.0, 1.0}, {}, 3.0);
  DtrPolicy policy(2);
  policy.set(0, 1, 6);
  policy.set(1, 0, 2);
  const ConvolutionSolver conv;
  const double analytic = conv.mean_execution_time(apply_policy(s, policy));
  sim::MonteCarloOptions mc;
  mc.replications = 40'000;
  mc.seed = 99;
  const auto metrics = sim::run_monte_carlo(s, policy, mc);
  ASSERT_TRUE(metrics.all_completed);
  const double tol = std::max(GetParam().mean_tol * analytic,
                              3.0 * metrics.mean_completion_time.half_width());
  EXPECT_NEAR(analytic, metrics.mean_completion_time.center, tol);
}

TEST_P(ConvolutionVsMc, Reliability) {
  const DcsScenario s = model_scenario(GetParam().family, {20, 10},
                                       {2.0, 1.0}, {120.0, 80.0}, 3.0);
  DtrPolicy policy(2);
  policy.set(0, 1, 6);
  const ConvolutionSolver conv;
  const double analytic = conv.reliability(apply_policy(s, policy));
  sim::MonteCarloOptions mc;
  mc.replications = 40'000;
  mc.seed = 100;
  const auto metrics = sim::run_monte_carlo(s, policy, mc);
  EXPECT_NEAR(analytic, metrics.reliability.center,
              std::max(0.01, 4.0 * metrics.reliability.half_width()));
}

TEST_P(ConvolutionVsMc, Qos) {
  const DcsScenario s =
      model_scenario(GetParam().family, {20, 10}, {2.0, 1.0}, {}, 3.0);
  DtrPolicy policy(2);
  policy.set(0, 1, 6);
  const ConvolutionSolver conv;
  const auto workloads = apply_policy(s, policy);
  const double mean = conv.mean_execution_time(workloads);
  const double deadline = 1.1 * mean;
  const double analytic = conv.qos(workloads, deadline);
  sim::MonteCarloOptions mc;
  mc.replications = 40'000;
  mc.seed = 101;
  mc.deadline = deadline;
  const auto metrics = sim::run_monte_carlo(s, policy, mc);
  EXPECT_NEAR(analytic, metrics.qos.center,
              std::max(0.01, 4.0 * metrics.qos.half_width()));
}

TEST(Convolution, QosMonotoneAndConvergesToOne) {
  const DcsScenario s =
      model_scenario(ModelFamily::kPareto1, {10, 5}, {2.0, 1.0}, {}, 2.0);
  const ConvolutionSolver conv;
  const auto workloads = apply_policy(s, DtrPolicy(2));
  double prev = 0.0;
  for (double t : {5.0, 15.0, 30.0, 60.0, 200.0}) {
    const double q = conv.qos(workloads, t);
    EXPECT_GE(q, prev - 1e-12);
    prev = q;
  }
  EXPECT_GT(prev, 0.99);
}

TEST(Convolution, QosWithFailuresBelowQosWithout) {
  const DcsScenario reliable =
      model_scenario(ModelFamily::kPareto1, {10, 5}, {2.0, 1.0}, {}, 2.0);
  const DcsScenario failing = model_scenario(ModelFamily::kPareto1, {10, 5},
                                             {2.0, 1.0}, {50.0, 30.0}, 2.0);
  const ConvolutionSolver c1, c2;
  const double q_rel = c1.qos(apply_policy(reliable, DtrPolicy(2)), 30.0);
  const double q_fail = c2.qos(apply_policy(failing, DtrPolicy(2)), 30.0);
  EXPECT_LT(q_fail, q_rel);
}

TEST(Convolution, ReliabilityDecreasesWithLoad) {
  const ConvolutionSolver conv;
  std::vector<double> values;
  for (int m : {5, 10, 20}) {
    const DcsScenario s = model_scenario(ModelFamily::kUniform, {m, 0},
                                         {2.0, 1.0}, {50.0, 50.0}, 2.0);
    values.push_back(conv.reliability(apply_policy(s, DtrPolicy(2))));
  }
  EXPECT_GT(values[0], values[1]);
  EXPECT_GT(values[1], values[2]);
}

TEST(Convolution, HeavyTailMeanCorrectionIsActive) {
  // The Pareto 2 model must produce a nonzero beyond-grid correction, and
  // the corrected mean must exceed the raw grid integral.
  const DcsScenario s =
      model_scenario(ModelFamily::kPareto2, {30, 0}, {2.0, 1.0}, {}, 2.0);
  const ConvolutionSolver conv;
  const auto workloads = apply_policy(s, DtrPolicy(2));
  const double mean = conv.mean_execution_time(workloads);
  const auto completion = conv.completion_density(workloads[0]);
  const double correction = conv.tail_mean_correction(workloads[0], completion);
  EXPECT_GT(correction, 0.0);
  // A single busy server makes T = Σ of 30 service draws: E[T] = 60 exactly,
  // and the heavy-tail correction is what recovers the beyond-grid part.
  EXPECT_NEAR(mean, 60.0, 0.3);
}

TEST(Convolution, MultiGroupBatchModesBracketMc) {
  // Server 0 receives two groups; the batch-max and batch-min treatments
  // must bracket the simulated truth.
  std::vector<ServerSpec> servers = {
      {2, dist::Exponential::with_mean(1.0), nullptr},
      {6, dist::Exponential::with_mean(1.0), nullptr},
      {6, dist::Exponential::with_mean(1.0), nullptr}};
  const DcsScenario s = make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(4.0),
      dist::Exponential::with_mean(0.2));
  DtrPolicy policy(3);
  policy.set(1, 0, 4);
  policy.set(2, 0, 4);
  ConvolutionOptions max_opts;
  max_opts.multi_group = ConvolutionOptions::MultiGroup::kBatchMax;
  ConvolutionOptions min_opts;
  min_opts.multi_group = ConvolutionOptions::MultiGroup::kBatchMin;
  const double upper =
      ConvolutionSolver(max_opts).mean_execution_time(apply_policy(s, policy));
  const double lower =
      ConvolutionSolver(min_opts).mean_execution_time(apply_policy(s, policy));
  sim::MonteCarloOptions mc;
  mc.replications = 30'000;
  mc.seed = 4;
  const auto metrics = sim::run_monte_carlo(s, policy, mc);
  EXPECT_LE(lower - 0.1, metrics.mean_completion_time.center);
  EXPECT_GE(upper + 0.1, metrics.mean_completion_time.center);
  EXPECT_LT(lower, upper);
}

TEST(Convolution, RejectMultiGroupModeThrows) {
  ServerWorkload w;
  w.local_tasks = 1;
  w.service = dist::Exponential::with_mean(1.0);
  w.inbound.push_back({1, dist::Exponential::with_mean(1.0)});
  w.inbound.push_back({1, dist::Exponential::with_mean(2.0)});
  ConvolutionOptions opts;
  opts.multi_group = ConvolutionOptions::MultiGroup::kReject;
  const ConvolutionSolver solver(opts);
  EXPECT_THROW(static_cast<void>(solver.mean_execution_time({w})), InvalidArgument);
}

TEST(Convolution, MeanRequiresReliableServers) {
  ServerWorkload w;
  w.local_tasks = 1;
  w.service = dist::Exponential::with_mean(1.0);
  w.failure = dist::Exponential::with_mean(10.0);
  const ConvolutionSolver solver;
  EXPECT_THROW(static_cast<void>(solver.mean_execution_time({w})), InvalidArgument);
}

TEST(Convolution, GridIsFrozenAfterFirstUse) {
  ServerWorkload w;
  w.local_tasks = 5;
  w.service = dist::Exponential::with_mean(1.0);
  const ConvolutionSolver solver;
  (void)solver.mean_execution_time({w});
  const double dt1 = solver.dt();
  (void)solver.qos({w}, 3.0);
  EXPECT_DOUBLE_EQ(solver.dt(), dt1);
}

TEST(Convolution, ExplicitGridHonoured) {
  ConvolutionOptions opts;
  opts.dt = 0.25;
  opts.cells = 1024;
  const ConvolutionSolver solver(opts);
  EXPECT_DOUBLE_EQ(solver.dt(), 0.25);
}

}  // namespace
}  // namespace agedtr::core
