// Compile-time and contract lockdown for the agedtr public API.
//
// The static_asserts pin type-level contracts other code relies on
// (non-copyability of lock-holding types, POD-ness of hot-path trace
// events, pointer identity of DistPtr); breaking one is an API change that
// must be made deliberately, with this file updated in the same commit.
// The runtime tests pin the error-reporting contract: AGEDTR_REQUIRE and
// AGEDTR_ASSERT stamp the throwing file:line into the message, which the
// require-not-throw lint rule (scripts/agedtr_lint.py) exists to protect.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <type_traits>

#include "agedtr/core/lattice_workspace.hpp"
#include "agedtr/core/scenario.hpp"
#include "agedtr/dist/distribution.hpp"
#include "agedtr/numerics/fft.hpp"
#include "agedtr/numerics/lattice.hpp"
#include "agedtr/service/json.hpp"
#include "agedtr/sim/simulator.hpp"
#include "agedtr/util/checkpoint.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"
#include "agedtr/util/supervisor.hpp"
#include "agedtr/util/thread_annotations.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr {
namespace {

// ---------------------------------------------------------------------------
// Lock-holding and resource-owning types must not be copyable: a copied
// Mutex would silently split one critical section into two.
static_assert(!std::is_copy_constructible_v<Mutex>);
static_assert(!std::is_copy_assignable_v<Mutex>);
static_assert(!std::is_move_constructible_v<Mutex>);
static_assert(!std::is_copy_constructible_v<MutexLock>);
static_assert(!std::is_copy_assignable_v<MutexLock>);
static_assert(!std::is_copy_constructible_v<CondVar>);
static_assert(!std::is_copy_constructible_v<ThreadPool>);
static_assert(!std::is_copy_assignable_v<ThreadPool>);
static_assert(!std::is_copy_constructible_v<core::LatticeWorkspace>);
static_assert(!std::is_copy_assignable_v<core::LatticeWorkspace>);
static_assert(!std::is_copy_constructible_v<Checkpoint>);
static_assert(!std::is_copy_assignable_v<Checkpoint>);

// CancelToken is the deliberate exception: copies share one flag so the
// watchdog and the attempt observe the same cancellation.
static_assert(std::is_copy_constructible_v<CancelToken>);

// TraceEvent stays trivially copyable POD — writers publish into the ring
// by plain member stores under a slot lock; a nontrivial member would turn
// every trace site into an allocation.
static_assert(std::is_trivially_copyable_v<metrics::TraceEvent>);
static_assert(std::is_standard_layout_v<metrics::TraceEvent>);
static_assert(std::is_trivially_destructible_v<metrics::TraceEvent>);

// DistPtr is shared_ptr-to-const: distribution identity (the pointer) keys
// the lattice workspace caches, and const-ness is what makes sharing one
// law across threads sound.
static_assert(
    std::is_same_v<dist::DistPtr, std::shared_ptr<const dist::Distribution>>);
static_assert(std::is_nothrow_move_constructible_v<dist::DistPtr>);

// Stats snapshots are returned by value from locked getters; they must
// move without throwing so the copies stay cheap.
static_assert(std::is_nothrow_move_constructible_v<CheckpointStats>);
static_assert(std::is_nothrow_move_constructible_v<SupervisionReport>);

// ---------------------------------------------------------------------------
// The hot value types registered in docs/layering.toml (rule
// `noexcept-move`, scripts/agedtr_analyze.py): densities and spectra live
// in the LatticeWorkspace ladders and the FFT plan cache, policies and
// results travel by value through search/Monte-Carlo vectors, Json nests
// recursively. A throwing move on any of them silently turns container
// growth into deep copies. The analyzer enforces the declaration in each
// header; these pins make the contract a test failure as well.
static_assert(std::is_nothrow_move_constructible_v<numerics::LatticeDensity>);
static_assert(std::is_nothrow_move_assignable_v<numerics::LatticeDensity>);
static_assert(std::is_nothrow_move_constructible_v<numerics::Spectrum>);
static_assert(std::is_nothrow_move_constructible_v<numerics::FftPlan>);
static_assert(std::is_nothrow_move_constructible_v<core::DtrPolicy>);
static_assert(std::is_nothrow_move_assignable_v<core::DtrPolicy>);
static_assert(std::is_nothrow_move_constructible_v<sim::SimResult>);
static_assert(std::is_nothrow_move_constructible_v<service::Json>);
// Declaring the moves must not have cost the copy operations (the classic
// rule-of-five slip: a declared move constructor suppresses the implicit
// copies).
static_assert(std::is_copy_constructible_v<numerics::LatticeDensity>);
static_assert(std::is_copy_assignable_v<numerics::LatticeDensity>);
static_assert(std::is_copy_constructible_v<core::DtrPolicy>);
static_assert(std::is_copy_assignable_v<core::DtrPolicy>);

// ---------------------------------------------------------------------------
// AGEDTR_REQUIRE / AGEDTR_ASSERT stamp the throwing file:line.

TEST(StaticContracts, RequireMessageCarriesFileAndLine) {
  std::string message;
  const int line = __LINE__ + 2;  // the AGEDTR_REQUIRE below
  try {
    AGEDTR_REQUIRE(1 + 1 == 3, "arithmetic still works");
    FAIL() << "AGEDTR_REQUIRE(false) did not throw";
  } catch (const InvalidArgument& e) {
    message = e.what();
  }
  const std::string expected =
      "static_contracts_test.cpp:" + std::to_string(line);
  EXPECT_NE(message.find(expected), std::string::npos)
      << "expected \"" << expected << "\" in: " << message;
  EXPECT_NE(message.find("arithmetic still works"), std::string::npos)
      << message;
  EXPECT_NE(message.find("1 + 1 == 3"), std::string::npos)
      << "stringified condition missing from: " << message;
}

TEST(StaticContracts, AssertMessageCarriesFileAndLine) {
  std::string message;
  const int line = __LINE__ + 2;  // the AGEDTR_ASSERT below
  try {
    AGEDTR_ASSERT(2 + 2 == 5);
    FAIL() << "AGEDTR_ASSERT(false) did not throw";
  } catch (const LogicError& e) {
    message = e.what();
  }
  const std::string expected =
      "static_contracts_test.cpp:" + std::to_string(line);
  EXPECT_NE(message.find(expected), std::string::npos)
      << "expected \"" << expected << "\" in: " << message;
  EXPECT_NE(message.find("2 + 2 == 5"), std::string::npos) << message;
}

TEST(StaticContracts, RequirePassesThroughOnTrue) {
  EXPECT_NO_THROW(AGEDTR_REQUIRE(true, "never thrown"));
  EXPECT_NO_THROW(AGEDTR_ASSERT(true));
}

// ---------------------------------------------------------------------------
// Failure taxonomy: the Supervisor's retry decision is part of the API.

TEST(StaticContracts, PermanentFailureTaxonomy) {
  EXPECT_TRUE(is_permanent_failure(InvalidArgument("bad input")));
  EXPECT_TRUE(is_permanent_failure(LogicError("internal bug")));
  EXPECT_FALSE(is_permanent_failure(ConvergenceError("no convergence")));
  EXPECT_FALSE(is_permanent_failure(TaskCancelled("overdue")));
  EXPECT_FALSE(is_permanent_failure(CheckpointError("disk gone")));
  EXPECT_FALSE(is_permanent_failure(std::runtime_error("generic")));
}

// ---------------------------------------------------------------------------
// Determinism of the supervision report: quarantine entries come back
// sorted by task index regardless of thread scheduling, and the in-flight
// registry scans in index order (an ordered map — rule `unordered-iter`
// is what keeps it that way). A report that depended on completion order
// would make failure summaries differ run to run.

TEST(StaticContracts, QuarantineReportIsIndexOrdered) {
  ThreadPool pool(4);
  SupervisorOptions options;
  options.max_retries = 0;
  options.pool = &pool;
  const SupervisionReport report =
      Supervisor(options).run(16, [](std::size_t index, const CancelToken&) {
        if (index % 2 == 1) {  // odd tasks fail permanently
          throw InvalidArgument("task " + std::to_string(index));
        }
      });
  ASSERT_EQ(report.quarantined.size(), 8u);
  for (std::size_t i = 0; i < report.quarantined.size(); ++i) {
    EXPECT_EQ(report.quarantined[i].index, 2 * i + 1);
  }
}

// ---------------------------------------------------------------------------
// Annotated Mutex wrapper semantics (the thread-safety analysis itself only
// runs under Clang; the runtime behavior must hold everywhere).

TEST(StaticContracts, MutexTryLockObservesContention) {
  Mutex mutex;
  {
    MutexLock lock(&mutex);
    // try_lock from another thread must fail while the lock is held...
    bool acquired = true;
    std::thread probe([&] { acquired = mutex.try_lock(); });
    probe.join();
    EXPECT_FALSE(acquired);
  }
  // ...and succeed once it is released.
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(StaticContracts, CondVarWakesWaiter) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread signaller([&] {
    MutexLock lock(&mutex);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(&mutex);
    while (!ready) cv.wait(mutex);
    EXPECT_TRUE(ready);
  }
  signaller.join();
}

}  // namespace
}  // namespace agedtr
