// The emulated Internet testbed and its characterization pipeline
// (Section III-B / Fig. 4).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "agedtr/core/convolution.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/stats/summary.hpp"
#include "agedtr/testbed/testbed.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::testbed {
namespace {

TEST(Testbed, ScenarioMatchesPaperMeans) {
  const core::DcsScenario s = make_testbed_scenario();
  EXPECT_NEAR(s.servers[0].service->mean(), 4.858, 1e-9);
  EXPECT_NEAR(s.servers[1].service->mean(), 2.357, 1e-9);
  EXPECT_NEAR(s.transfer[0][1]->mean(), 1.207, 1e-9);
  EXPECT_NEAR(s.transfer[1][0]->mean(), 0.803, 1e-9);
  EXPECT_NEAR(s.fn_transfer[0][1]->mean(), 0.313, 1e-9);
  EXPECT_NEAR(s.fn_transfer[1][0]->mean(), 0.145, 1e-9);
  EXPECT_NEAR(s.servers[0].failure->mean(), 300.0, 1e-9);
  EXPECT_NEAR(s.servers[1].failure->mean(), 150.0, 1e-9);
  EXPECT_EQ(s.servers[0].initial_tasks, 50);
  EXPECT_EQ(s.servers[1].initial_tasks, 25);
}

TEST(Testbed, ScenarioFamiliesMatchPaperFits) {
  const core::DcsScenario s = make_testbed_scenario();
  EXPECT_EQ(s.servers[0].service->name(), "pareto");
  EXPECT_EQ(s.transfer[0][1]->name(), "shifted_gamma");
  EXPECT_EQ(s.fn_transfer[1][0]->name(), "shifted_gamma");
  EXPECT_TRUE(s.servers[0].failure->is_memoryless());
}

TEST(Testbed, MeasurementsHaveRoughlyTheRightMean) {
  // The service law is heavy-tailed (α = 1.2), so finite-sample means are
  // biased low with large fluctuations; bound loosely and check the bulk
  // via the median, which concentrates fast.
  const core::DcsScenario truth = make_testbed_scenario();
  auto samples = measure(truth, MeasuredTime::kService1, 5000, 42);
  const auto summary = stats::summarize(samples);
  EXPECT_GT(summary.mean, 2.0);
  EXPECT_LT(summary.mean, 12.0);
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[samples.size() / 2],
              truth.servers[0].service->quantile(0.5), 0.15);
  for (double x : samples) EXPECT_GT(x, 0.0);
}

TEST(Testbed, MeasurementJitterCanBeDisabled) {
  TestbedOptions opts;
  opts.measurement_jitter_sigma = 0.0;
  const core::DcsScenario truth = make_testbed_scenario(opts);
  const auto samples =
      measure(truth, MeasuredTime::kTransfer12, 2000, 7, opts);
  // Without jitter no sample can undercut the shifted-Gamma shift.
  const double shift = truth.transfer[0][1]->lower_bound();
  for (double x : samples) EXPECT_GE(x, shift - 1e-12);
}

TEST(Testbed, MeasurementsAreDeterministicPerSeed) {
  const core::DcsScenario truth = make_testbed_scenario();
  const auto a = measure(truth, MeasuredTime::kFn12, 100, 5);
  const auto b = measure(truth, MeasuredTime::kFn12, 100, 5);
  EXPECT_EQ(a, b);
  const auto c = measure(truth, MeasuredTime::kFn21, 100, 5);
  EXPECT_NE(a, c);
}

TEST(Testbed, CharacterizationRecoversMeans) {
  const CharacterizedTestbed ct = characterize_testbed(4000, 11);
  // Heavy-tailed service: the *derived* mean of the fitted Pareto is noisy
  // (it hinges on α̂ − 1); grant ±40%. Transfer laws are light-tailed and
  // recover tightly.
  EXPECT_NEAR(ct.fitted.servers[0].service->mean(), 4.858, 0.4 * 4.858);
  EXPECT_NEAR(ct.fitted.servers[1].service->mean(), 2.357, 0.4 * 2.357);
  EXPECT_NEAR(ct.fitted.transfer[0][1]->mean(), 1.207, 0.1);
  EXPECT_NEAR(ct.fitted.transfer[1][0]->mean(), 0.803, 0.1);
}

TEST(Testbed, CharacterizationKeepsWorkloadAndFailures) {
  const CharacterizedTestbed ct = characterize_testbed(2000, 12);
  EXPECT_EQ(ct.fitted.servers[0].initial_tasks, 50);
  EXPECT_NEAR(ct.fitted.servers[0].failure->mean(), 300.0, 1e-9);
}

TEST(Testbed, SelectionProducesGoodFitsPerQuantity) {
  // Shape families can be confusable at finite samples (the paper itself
  // selected by histogram distance); we require the *fit quality* to be
  // good rather than the label to be exact.
  const CharacterizedTestbed ct = characterize_testbed(4000, 13);
  for (const Characterization* c :
       {&ct.service1, &ct.service2, &ct.transfer12, &ct.transfer21}) {
    EXPECT_LT(c->selection.best().ks, 0.08);
  }
}

TEST(Testbed, ExperimentReliabilityIsAProbability) {
  const core::DcsScenario truth = make_testbed_scenario();
  const auto ci =
      run_experiment(truth, policy::make_two_server_policy(26, 0), 500, 3);
  EXPECT_GE(ci.center, 0.0);
  EXPECT_LE(ci.center, 1.0);
  EXPECT_GT(ci.upper, ci.lower);
}

TEST(Testbed, PaperPolicyBeatsNoReallocation) {
  // Fig. 4(c): the paper's policy (L12 = 26) beats doing nothing. Note the
  // paper's parameters balance the per-task reliability costs almost
  // exactly (4.858/300 ≈ 2.357/150), so the landscape is nearly flat; the
  // paper's reported ~15% no-reallocation penalty implies an imbalance its
  // unstated shape parameters carried (recorded in EXPERIMENTS.md). Here we
  // assert the direction and the knife-edge flatness.
  const core::DcsScenario truth = make_testbed_scenario();
  const core::ConvolutionSolver solver;
  const double with_policy = solver.reliability(
      core::apply_policy(truth, policy::make_two_server_policy(26, 0)));
  const double without = solver.reliability(
      core::apply_policy(truth, policy::make_two_server_policy(0, 0)));
  EXPECT_GT(with_policy, without);
  EXPECT_LT(with_policy - without, 0.10);  // knife-edge: gains are small
}

TEST(Testbed, TheoreticalReliabilityNearPaperValue) {
  // The paper predicts R_∞ ≈ 0.6007 at (L12, L21) = (26, 0). Our unstated
  // shape parameters differ from the authors', so demand the right
  // neighbourhood rather than the exact figure.
  const core::DcsScenario truth = make_testbed_scenario();
  const core::ConvolutionSolver solver;
  const double r = solver.reliability(
      core::apply_policy(truth, policy::make_two_server_policy(26, 0)));
  EXPECT_GT(r, 0.35);
  EXPECT_LT(r, 0.80);
}

TEST(Testbed, RejectsBadConfiguration) {
  TestbedOptions opts;
  opts.transfer_shift_fraction = 1.5;
  EXPECT_THROW(make_testbed_scenario(opts), InvalidArgument);
  const core::DcsScenario truth = make_testbed_scenario();
  EXPECT_THROW(measure(truth, MeasuredTime::kService1, 1, 1),
               InvalidArgument);
}

}  // namespace
}  // namespace agedtr::testbed
