// SumIid (L-fold i.i.d. sums) and the per-task transfer scaling mode
// threaded through apply_policy, the solvers and the simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/markovian.hpp"
#include "agedtr/core/regen_solver.hpp"
#include "agedtr/dist/deterministic.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/gamma.hpp"
#include "agedtr/dist/sum_iid.hpp"
#include "agedtr/dist/uniform.hpp"
#include "agedtr/policy/objective.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr {
namespace {

TEST(SumIid, MomentsAreLinear) {
  const dist::SumIid s(std::make_shared<dist::Gamma>(2.0, 0.5), 7);
  EXPECT_NEAR(s.mean(), 7.0, 1e-12);
  EXPECT_NEAR(s.variance(), 7 * 2.0 * 0.25, 1e-12);
  EXPECT_NEAR(s.lower_bound(), 0.0, 1e-12);
}

TEST(SumIid, SumOfExponentialsIsErlang) {
  // Sum of 3 Exp(1) = Gamma(3, 1): compare CDFs.
  const dist::SumIid s(dist::Exponential::with_mean(1.0), 3);
  const dist::Gamma erlang(3.0, 1.0);
  for (double x : {1.0, 3.0, 6.0, 10.0}) {
    EXPECT_NEAR(s.cdf(x), erlang.cdf(x), 2e-3) << "x=" << x;
    EXPECT_NEAR(s.sf(x), erlang.sf(x), 2e-3) << "x=" << x;
  }
}

TEST(SumIid, PdfMatchesErlang) {
  const dist::SumIid s(dist::Exponential::with_mean(1.0), 3);
  const dist::Gamma erlang(3.0, 1.0);
  for (double x : {1.0, 2.5, 5.0}) {
    EXPECT_NEAR(s.pdf(x), erlang.pdf(x), 5e-3) << "x=" << x;
  }
}

TEST(SumIid, LaplaceIsPower) {
  const dist::DistPtr base = dist::Exponential::with_mean(2.0);
  const dist::SumIid s(base, 4);
  for (double q : {0.1, 1.0}) {
    EXPECT_NEAR(s.laplace(q), std::pow(base->laplace(q), 4.0), 1e-12);
  }
}

TEST(SumIid, SamplingIsExact) {
  // Sum of deterministic values has zero variance.
  const dist::SumIid s(std::make_shared<dist::Deterministic>(1.5), 4);
  random::Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(s.sample(rng), 6.0);
}

TEST(SumIid, SamplingMeanConverges) {
  const dist::SumIid s(std::make_shared<dist::Uniform>(0.0, 2.0), 5);
  random::Rng rng(2);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += s.sample(rng);
  EXPECT_NEAR(total / n, 5.0, 0.05);
}

TEST(SumIid, QuantileRoundTrip) {
  const dist::SumIid s(std::make_shared<dist::Gamma>(1.5, 1.0), 4);
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(s.cdf(s.quantile(p)), p, 1e-4);
  }
}

TEST(SumIid, FactoryCollapsesCountOne) {
  const dist::DistPtr base = dist::Exponential::with_mean(1.0);
  EXPECT_EQ(dist::sum_iid(base, 1).get(), base.get());
  EXPECT_NE(dist::sum_iid(base, 2).get(), base.get());
  EXPECT_THROW(dist::sum_iid(base, 0), InvalidArgument);
  EXPECT_THROW(dist::sum_iid(nullptr, 2), InvalidArgument);
}

TEST(SumIid, IntegralSfConsistent) {
  const dist::SumIid s(dist::Exponential::with_mean(1.0), 3);
  const dist::Gamma erlang(3.0, 1.0);
  for (double t : {0.0, 2.0, 6.0}) {
    EXPECT_NEAR(s.integral_sf(t), erlang.integral_sf(t), 0.02) << "t=" << t;
  }
}

// ---- per-task transfer scaling through the model stack --------------------

core::DcsScenario per_task_scenario(int m1, int m2, double z_per_task) {
  std::vector<core::ServerSpec> servers = {
      {m1, dist::Exponential::with_mean(2.0), nullptr},
      {m2, dist::Exponential::with_mean(1.0), nullptr}};
  core::DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(z_per_task),
      dist::Exponential::with_mean(0.2));
  s.transfer_scaling = core::TransferScaling::kPerTask;
  return s;
}

TEST(PerTaskScaling, ApplyPolicyMarksInbound) {
  const core::DcsScenario s = per_task_scenario(10, 5, 1.0);
  core::DtrPolicy policy(2);
  policy.set(0, 1, 4);
  const auto w = core::apply_policy(s, policy);
  ASSERT_EQ(w[1].inbound.size(), 1u);
  EXPECT_TRUE(w[1].inbound[0].per_task);
  EXPECT_NEAR(w[1].inbound[0].group_transfer_law()->mean(), 4.0, 1e-9);
}

TEST(PerTaskScaling, DeterministicTransferExactCompletion) {
  // Deterministic per-task transfer 2 s: group of 3 arrives at t = 6.
  std::vector<core::ServerSpec> servers = {
      {3, std::make_shared<dist::Deterministic>(1.0), nullptr},
      {0, std::make_shared<dist::Deterministic>(1.0), nullptr}};
  core::DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), std::make_shared<dist::Deterministic>(2.0),
      std::make_shared<dist::Deterministic>(0.1));
  s.transfer_scaling = core::TransferScaling::kPerTask;
  core::DtrPolicy policy(2);
  policy.set(0, 1, 3);
  const sim::DcsSimulator simulator(s);
  random::Rng rng(1);
  const auto r = simulator.run(policy, rng);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.completion_time, 6.0 + 3.0, 1e-12);
}

TEST(PerTaskScaling, ConvolutionMatchesMonteCarlo) {
  const core::DcsScenario s = per_task_scenario(16, 8, 1.5);
  core::DtrPolicy policy(2);
  policy.set(0, 1, 6);
  const core::ConvolutionSolver solver;
  const double analytic =
      solver.mean_execution_time(core::apply_policy(s, policy));
  sim::MonteCarloOptions mc;
  mc.replications = 30'000;
  mc.seed = 77;
  const auto metrics = sim::run_monte_carlo(s, policy, mc);
  ASSERT_TRUE(metrics.all_completed);
  EXPECT_NEAR(analytic, metrics.mean_completion_time.center,
              std::max(0.01 * analytic,
                       3.5 * metrics.mean_completion_time.half_width()));
}

TEST(PerTaskScaling, MarkovianSolverUsesGroupMean) {
  // All-exponential per-task scenario: the Markovian solver's group rate
  // must be 1/(L·z̄); verify against Monte Carlo of an equivalent scenario
  // whose group transfer is a single exponential with mean L·z̄.
  const core::DcsScenario s = per_task_scenario(6, 3, 1.0);
  core::DtrPolicy policy(2);
  policy.set(0, 1, 4);
  const core::MarkovianSolver solver(s);
  const double markov_mean = solver.mean_execution_time(policy);
  std::vector<core::ServerSpec> servers = {
      {6, dist::Exponential::with_mean(2.0), nullptr},
      {3, dist::Exponential::with_mean(1.0), nullptr}};
  core::DcsScenario grouped = core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(4.0),
      dist::Exponential::with_mean(0.2));
  const core::MarkovianSolver grouped_solver(grouped);
  EXPECT_NEAR(markov_mean, grouped_solver.mean_execution_time(policy), 1e-9);
}

TEST(PerTaskScaling, MarkovianEvaluatorMatchesMarkovianSolver) {
  const core::DcsScenario s = per_task_scenario(8, 4, 1.0);
  const auto evaluator = policy::make_markovian_evaluator(
      s, policy::Objective::kMeanExecutionTime);
  const core::MarkovianSolver solver(s);
  core::DtrPolicy policy(2);
  policy.set(0, 1, 3);
  EXPECT_NEAR(evaluator(policy), solver.mean_execution_time(policy), 0.1);
}

TEST(PerTaskScaling, RegenSolverUsesSumLaw) {
  // Small per-task configuration against the convolution solver.
  const core::DcsScenario s = per_task_scenario(2, 1, 1.0);
  core::DtrPolicy policy(2);
  policy.set(0, 1, 2);
  const core::RegenerativeSolver regen(s);
  const core::ConvolutionSolver conv;
  const double reference =
      conv.mean_execution_time(core::apply_policy(s, policy));
  EXPECT_NEAR(regen.mean_execution_time(policy), reference, 0.03 * reference);
}

TEST(PerTaskScaling, SevereDelayShrinksOptimalReallocation) {
  // The paper's central qualitative conclusion: as the per-task transfer
  // delay grows, the optimal number of reallocated tasks falls.
  const auto optimum = [](double z_per_task) {
    const core::DcsScenario s = per_task_scenario(30, 0, z_per_task);
    const auto eval = policy::make_age_dependent_evaluator(
        s, policy::Objective::kMeanExecutionTime);
    const policy::TwoServerPolicySearch search(30, 0);
    ThreadPool pool(4);
    return search
        .optimize(eval, policy::Objective::kMeanExecutionTime, &pool)
        .l12;
  };
  const int low = optimum(0.2);
  const int severe = optimum(9.0);
  EXPECT_GT(low, severe);
  EXPECT_GT(low, 8);  // fast network: offload a sizeable share
}

}  // namespace
}  // namespace agedtr
