// util::metrics: registry semantics (idempotent registration, type
// mismatch, find/reset), sharded merge correctness under concurrent
// writers, histogram bucket boundary placement, trace-ring bounded memory,
// report/JSON shape, ScopedExport file plumbing, and the disabled-path
// overhead claim.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"

namespace agedtr::metrics {
namespace {

/// Enables metrics for one test body and restores the disabled default
/// (with a registry reset) afterwards, so tests cannot leak state.
class MetricsOn {
 public:
  MetricsOn() {
    MetricsRegistry::global().reset();
    set_enabled(true);
  }
  ~MetricsOn() {
    set_enabled(false);
    MetricsRegistry::global().reset();
  }
};

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry& registry = MetricsRegistry::global();
  Counter& a = registry.counter("test.idempotent", "first help");
  Counter& b = registry.counter("test.idempotent", "other help");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = registry.gauge("test.idempotent_gauge");
  Gauge& g2 = registry.gauge("test.idempotent_gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 =
      registry.histogram("test.idempotent_hist", {1.0, 2.0, 4.0});
  Histogram& h2 =
      registry.histogram("test.idempotent_hist", {1.0, 2.0, 4.0});
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, TypeMismatchIsAnError) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.counter("test.mismatch");
  EXPECT_THROW(registry.gauge("test.mismatch"), InvalidArgument);
  EXPECT_THROW(registry.histogram("test.mismatch", {1.0}), InvalidArgument);
  registry.histogram("test.mismatch_hist", {1.0, 2.0});
  EXPECT_THROW(registry.counter("test.mismatch_hist"), InvalidArgument);
  // Re-registering a histogram with different bounds breaks the bucket
  // contract and must be rejected too.
  EXPECT_THROW(registry.histogram("test.mismatch_hist", {1.0, 3.0}),
               InvalidArgument);
}

TEST(MetricsRegistry, FindReturnsNullForUnknownOrWrongType) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.counter("test.find_counter");
  EXPECT_NE(registry.find_counter("test.find_counter"), nullptr);
  EXPECT_EQ(registry.find_counter("test.find_counter_missing"), nullptr);
  EXPECT_EQ(registry.find_gauge("test.find_counter"), nullptr);
  EXPECT_EQ(registry.find_histogram("test.find_counter"), nullptr);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  const MetricsOn on;
  MetricsRegistry& registry = MetricsRegistry::global();
  Counter& counter = registry.counter("test.reset_counter");
  counter.add(41);
  Histogram& histogram = registry.histogram("test.reset_hist", {1.0});
  histogram.observe(0.5);
  registry.reset();
  // Same objects (sites cache references), zeroed contents.
  EXPECT_EQ(&counter, registry.find_counter("test.reset_counter"));
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.snapshot().count, 0u);
  counter.add();
  EXPECT_EQ(counter.value(), 1u);
}

TEST(MetricsCounter, DisabledWritesAreDropped) {
  MetricsRegistry::global().reset();
  set_enabled(false);
  Counter& counter = MetricsRegistry::global().counter("test.disabled");
  counter.add(7);
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsCounter, ConcurrentWritersMergeExactly) {
  const MetricsOn on;
  Counter& counter = MetricsRegistry::global().counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(MetricsGauge, SetAndShardedDeltasCompose) {
  const MetricsOn on;
  Gauge& gauge = MetricsRegistry::global().gauge("test.gauge");
  gauge.set(100.0);
  gauge.add(5.0);
  gauge.add(-2.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 103.0);
  gauge.set(7.0);  // set clears the delta ledger
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
}

TEST(MetricsGauge, ConcurrentDeltasMergeExactly) {
  const MetricsOn on;
  Gauge& gauge = MetricsRegistry::global().gauge("test.gauge_concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      // +2 then -1 per round: net +1 per iteration.
      for (int i = 0; i < kPerThread; ++i) {
        gauge.add(2.0);
        gauge.add(-1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge.value(), kThreads * kPerThread);
}

TEST(MetricsHistogram, BucketBoundariesAreUpperInclusive) {
  const MetricsOn on;
  Histogram& histogram = MetricsRegistry::global().histogram(
      "test.hist_bounds", {1.0, 2.0, 4.0});
  // le-style buckets: value <= bound lands in that bucket.
  histogram.observe(0.5);  // bucket 0 (<= 1)
  histogram.observe(1.0);  // bucket 0 (boundary is inclusive)
  histogram.observe(1.5);  // bucket 1
  histogram.observe(4.0);  // bucket 2 (boundary)
  histogram.observe(9.0);  // +inf bucket
  const HistogramSnapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
  EXPECT_DOUBLE_EQ(snap.mean(), snap.sum / 5.0);
}

TEST(MetricsHistogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), InvalidArgument);
  EXPECT_THROW(Histogram({1.0, 1.0}), InvalidArgument);
}

TEST(MetricsHistogram, ConcurrentObservationsMergeExactly) {
  const MetricsOn on;
  Histogram& histogram = MetricsRegistry::global().histogram(
      "test.hist_concurrent", exponential_buckets(1.0, 2.0, 8));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.observe(static_cast<double>(i % 300));
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  double expected_sum = 0.0;
  for (int i = 0; i < kPerThread; ++i) expected_sum += i % 300;
  EXPECT_NEAR(snap.sum, expected_sum * kThreads, 1e-6 * expected_sum);
}

TEST(MetricsBuckets, LaddersHaveTheDocumentedShape) {
  const std::vector<double> exp = exponential_buckets(1.0, 2.0, 4);
  EXPECT_EQ(exp, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  const std::vector<double> lin = linear_buckets(1.0, 0.5, 3);
  EXPECT_EQ(lin, (std::vector<double>{1.0, 1.5, 2.0}));
  EXPECT_THROW(exponential_buckets(0.0, 2.0, 3), InvalidArgument);
  EXPECT_THROW(linear_buckets(0.0, 0.0, 3), InvalidArgument);
}

TEST(TraceRing, MemoryStaysBoundedUnderOverflow) {
  TraceRing ring(64);
  EXPECT_EQ(ring.capacity(), 64u);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    TraceEvent e;
    e.name = "overflow";
    e.start_us = i;
    ring.record(e);
  }
  EXPECT_EQ(ring.recorded(), 10'000u);
  const std::vector<TraceEvent> events = ring.drain();
  ASSERT_EQ(events.size(), 64u);  // the oldest were overwritten, not kept
  // The survivors are the newest events, returned oldest-first.
  EXPECT_EQ(events.front().start_us, 10'000u - 64u);
  EXPECT_EQ(events.back().start_us, 9'999u);
}

TEST(TraceRing, ClearEmptiesTheRing) {
  TraceRing ring(8);
  TraceEvent e;
  e.name = "x";
  ring.record(e);
  ring.clear();
  EXPECT_TRUE(ring.drain().empty());
  EXPECT_EQ(ring.recorded(), 0u);
}

TEST(TraceSpan, RecordsIntoGlobalRingAndHistogram) {
  const MetricsOn on;
  Histogram& histogram = MetricsRegistry::global().histogram(
      "test.span_seconds", exponential_buckets(1e-9, 10.0, 12));
  const std::uint64_t before =
      MetricsRegistry::global().trace().recorded();
  {
    TraceSpan span("test.span", "test", &histogram);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(MetricsRegistry::global().trace().recorded(), before + 1);
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.sum, 0.0005);  // the 1 ms sleep must be visible
}

TEST(TraceSpan, DisabledSpanRecordsNothing) {
  MetricsRegistry::global().reset();
  set_enabled(false);
  const std::uint64_t before =
      MetricsRegistry::global().trace().recorded();
  {
    TraceSpan span("test.disabled_span", "test");
  }
  EXPECT_EQ(MetricsRegistry::global().trace().recorded(), before);
}

TEST(MetricsReport, TextReportHasPrometheusShape) {
  const MetricsOn on;
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.counter("test.report_counter", "events seen").add(3);
  registry.gauge("test.report_gauge").set(2.5);
  Histogram& histogram =
      registry.histogram("test.report_hist", {1.0, 2.0}, "latencies");
  histogram.observe(0.5);
  histogram.observe(1.5);
  histogram.observe(5.0);
  const std::string report = registry.text_report();
  EXPECT_NE(report.find("# HELP test.report_counter events seen"),
            std::string::npos);
  EXPECT_NE(report.find("# TYPE test.report_counter counter"),
            std::string::npos);
  EXPECT_NE(report.find("test.report_counter 3"), std::string::npos);
  EXPECT_NE(report.find("test.report_gauge 2.5"), std::string::npos);
  // Histogram buckets are cumulative in le order, closed by +Inf.
  EXPECT_NE(report.find("test.report_hist_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(report.find("test.report_hist_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(report.find("test.report_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(report.find("test.report_hist_count 3"), std::string::npos);
}

TEST(MetricsReport, ChromeTraceJsonHasCompleteEvents) {
  const MetricsOn on;
  {
    TraceSpan span("test.json_span", "cat");
  }
  const std::string json = MetricsRegistry::global().chrome_trace_json();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"name\":\"test.json_span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"cat\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ScopedExport, WritesReportAndTraceNextToEachOther) {
  MetricsRegistry::global().reset();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "agedtr_metrics_test")
          .string();
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/nested/report.txt";
  {
    const ScopedExport exporter(path);
    EXPECT_TRUE(exporter.active());
    EXPECT_TRUE(enabled());  // the flag is the whole point of the plumbing
    MetricsRegistry::global().counter("test.export_counter").add(2);
    TraceSpan span("test.export_span", "test");
  }
  EXPECT_FALSE(enabled());
  std::ifstream report(path);
  ASSERT_TRUE(report.good());
  std::stringstream content;
  content << report.rdbuf();
  EXPECT_NE(content.str().find("test.export_counter 2"), std::string::npos);
  std::ifstream trace(path + ".trace.json");
  ASSERT_TRUE(trace.good());
  std::stringstream trace_content;
  trace_content << trace.rdbuf();
  EXPECT_NE(trace_content.str().find("test.export_span"), std::string::npos);
  std::filesystem::remove_all(dir);
  MetricsRegistry::global().reset();
}

TEST(ScopedExport, EmptyPathIsInert) {
  const ScopedExport exporter("");
  EXPECT_FALSE(exporter.active());
  EXPECT_FALSE(enabled());
}

/// The cost-model assertion: a disabled site must stay within a generous
/// constant factor of an uninstrumented loop. The bound is deliberately
/// loose (CI machines are noisy); the micro_kernels suite gives the precise
/// numbers.
TEST(MetricsOverhead, DisabledPathIsCheap) {
  set_enabled(false);
  Counter& counter =
      MetricsRegistry::global().counter("test.overhead_counter");
  constexpr int kIters = 2'000'000;
  using Clock = std::chrono::steady_clock;

  volatile std::uint64_t sink = 0;
  const auto t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    sink = sink + 1;
  }
  const double baseline = std::chrono::duration<double>(
                              Clock::now() - t0)
                              .count();

  const auto t1 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    counter.add();
    sink = sink + 1;
  }
  const double instrumented = std::chrono::duration<double>(
                                  Clock::now() - t1)
                                  .count();

  EXPECT_EQ(counter.value(), 0u);  // nothing was recorded
  // One relaxed load + branch per iteration: allow 20x the bare loop plus
  // an absolute floor so micro-noise on a loaded machine cannot flake.
  EXPECT_LT(instrumented, baseline * 20.0 + 0.05);
}

}  // namespace
}  // namespace agedtr::metrics
