// util::Supervisor: deadline/retry/quarantine task supervision — success
// passthrough, transient-failure retry with deterministic backoff, poison
// tasks quarantined with their error, permanent failures skipping the retry
// loop, the watchdog cancelling a stalled attempt, and the supervised
// entry points (EvaluationEngine::evaluate_supervised, run_monte_carlo)
// reproducing their unsupervised results bit for bit.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/evaluation_engine.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/supervisor.hpp"

namespace agedtr {
namespace {

using core::DcsScenario;
using core::DtrPolicy;
using core::ServerSpec;
using dist::ModelFamily;

DcsScenario scenario_2(ModelFamily family, int m1, int m2, double w1,
                       double w2, double z, bool failures = false) {
  std::vector<ServerSpec> servers = {
      {m1, dist::make_model_distribution(family, w1),
       failures ? dist::Exponential::with_mean(50.0) : nullptr},
      {m2, dist::make_model_distribution(family, w2),
       failures ? dist::Exponential::with_mean(40.0) : nullptr}};
  return core::make_uniform_network_scenario(
      std::move(servers), dist::make_model_distribution(family, z),
      dist::Exponential::with_mean(0.2));
}

SupervisorOptions fast_retry_options(int max_retries) {
  SupervisorOptions options;
  options.max_retries = max_retries;
  options.backoff_initial_seconds = 1e-4;  // keep test retries snappy
  return options;
}

TEST(Supervisor, AllTasksSucceedingProduceCleanReport) {
  std::atomic<int> executions{0};
  const SupervisionReport report =
      Supervisor().run(16, [&](std::size_t, const CancelToken& token) {
        token.check("test");
        executions.fetch_add(1);
      });
  EXPECT_EQ(executions.load(), 16);
  EXPECT_EQ(report.tasks, 16u);
  EXPECT_EQ(report.succeeded, 16u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.watchdog_cancellations, 0u);
  EXPECT_TRUE(report.all_succeeded());
  EXPECT_TRUE(report.quarantined.empty());
}

TEST(Supervisor, TransientFailureIsRetriedUntilItSucceeds) {
  std::atomic<int> attempts_of_3{0};
  const SupervisionReport report = Supervisor(fast_retry_options(2)).run(
      8, [&](std::size_t i, const CancelToken&) {
        if (i == 3 && attempts_of_3.fetch_add(1) < 2) {
          throw std::runtime_error("transient glitch");
        }
      });
  EXPECT_EQ(attempts_of_3.load(), 3);  // two failures, then success
  EXPECT_TRUE(report.all_succeeded());
  EXPECT_EQ(report.retries, 2u);
  EXPECT_TRUE(report.quarantined.empty());
}

TEST(Supervisor, PoisonTaskIsQuarantinedWithItsError) {
  std::atomic<int> attempts_of_5{0};
  const SupervisionReport report = Supervisor(fast_retry_options(2)).run(
      8, [&](std::size_t i, const CancelToken&) {
        if (i == 5) {
          attempts_of_5.fetch_add(1);
          throw std::runtime_error("poison payload");
        }
      });
  EXPECT_EQ(attempts_of_5.load(), 3);  // 1 + max_retries attempts burned
  EXPECT_FALSE(report.all_succeeded());
  EXPECT_EQ(report.succeeded, 7u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].index, 5u);
  EXPECT_EQ(report.quarantined[0].attempts, 3);
  EXPECT_NE(report.quarantined[0].error.find("poison payload"),
            std::string::npos);
  EXPECT_TRUE(report.is_quarantined(5));
  EXPECT_FALSE(report.is_quarantined(4));
  EXPECT_NE(report.summary().find("poison payload"), std::string::npos);
}

TEST(Supervisor, PermanentFailureSkipsTheRetryLoop) {
  std::atomic<int> attempts{0};
  const SupervisionReport report = Supervisor(fast_retry_options(5)).run(
      3, [&](std::size_t i, const CancelToken&) {
        if (i == 1) {
          attempts.fetch_add(1);
          throw InvalidArgument("malformed input never fixes itself");
        }
      });
  EXPECT_EQ(attempts.load(), 1);  // no retries for a permanent failure
  EXPECT_EQ(report.retries, 0u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].index, 1u);
  EXPECT_EQ(report.quarantined[0].attempts, 1);
}

TEST(Supervisor, WatchdogCancelsStalledAttemptAndRetrySucceeds) {
  SupervisorOptions options = fast_retry_options(2);
  options.deadline_seconds = 0.05;
  std::atomic<int> attempts_of_0{0};
  const SupervisionReport report = Supervisor(options).run(
      4, [&](std::size_t i, const CancelToken& token) {
        if (i == 0 && attempts_of_0.fetch_add(1) == 0) {
          // Stall (cooperatively): poll the token until the watchdog
          // cancels the attempt. Bounded so a watchdog bug fails the test
          // instead of hanging it.
          const auto give_up =
              std::chrono::steady_clock::now() + std::chrono::seconds(10);
          while (std::chrono::steady_clock::now() < give_up) {
            token.check("stalled task");
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          FAIL() << "watchdog never cancelled the stalled attempt";
        }
      });
  EXPECT_GE(attempts_of_0.load(), 2);
  EXPECT_TRUE(report.all_succeeded());
  EXPECT_GE(report.watchdog_cancellations, 1u);
  EXPECT_GE(report.retries, 1u);
}

TEST(Supervisor, BackoffScheduleIsDeterministicAndGrows) {
  const SupervisorOptions options;  // initial 0.02, factor 2, jitter 0.25
  const double first = Supervisor::backoff_delay(options, 7, 1);
  const double second = Supervisor::backoff_delay(options, 7, 2);
  EXPECT_EQ(first, Supervisor::backoff_delay(options, 7, 1));
  // Jitter stretches each delay by at most 25%, so consecutive attempts
  // stay strictly ordered: [0.02, 0.025) < [0.04, 0.05).
  EXPECT_GE(first, 0.02);
  EXPECT_LT(first, 0.025);
  EXPECT_GE(second, 0.04);
  EXPECT_LT(second, 0.05);

  SupervisorOptions reseeded = options;
  reseeded.jitter_seed = 0xdead;
  EXPECT_NE(Supervisor::backoff_delay(reseeded, 7, 1), first);
}

TEST(Supervisor, BudgetDerivedDeadlineUsesSlack) {
  EvalBudget budget;
  budget.max_seconds = 1.5;
  const SupervisorOptions derived = supervisor_for_budget(budget, 4.0);
  EXPECT_DOUBLE_EQ(derived.deadline_seconds, 6.0);

  const SupervisorOptions unlimited = supervisor_for_budget(EvalBudget{});
  EXPECT_DOUBLE_EQ(unlimited.deadline_seconds, 0.0);
}

TEST(SupervisionReport, AbsorbShiftsIndicesAndAccumulates) {
  SupervisionReport total;
  SupervisionReport part;
  part.tasks = 2;
  part.succeeded = 1;
  part.retries = 3;
  part.watchdog_cancellations = 1;
  part.quarantined.push_back({1, 4, "boom"});
  total.absorb(part, 10);
  EXPECT_EQ(total.tasks, 2u);
  EXPECT_EQ(total.retries, 3u);
  EXPECT_EQ(total.watchdog_cancellations, 1u);
  ASSERT_EQ(total.quarantined.size(), 1u);
  EXPECT_EQ(total.quarantined[0].index, 11u);
  EXPECT_TRUE(total.is_quarantined(11));
}

TEST(SupervisedMonteCarlo, MatchesUnsupervisedBitForBit) {
  const DcsScenario s = scenario_2(ModelFamily::kExponential, 10, 5, 2.0,
                                   1.0, 1.0, /*failures=*/true);
  const DtrPolicy policy = policy::make_two_server_policy(3, 0);

  sim::MonteCarloOptions plain;
  plain.replications = 400;
  plain.seed = 99;
  const sim::MonteCarloMetrics a = sim::run_monte_carlo(s, policy, plain);

  sim::MonteCarloOptions supervised = plain;
  supervised.supervise = SupervisorOptions{};
  const sim::MonteCarloMetrics b = sim::run_monte_carlo(s, policy, supervised);

  EXPECT_TRUE(b.supervision.all_succeeded());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.reliability.center, b.reliability.center);
  EXPECT_EQ(a.reliability.lower, b.reliability.lower);
  EXPECT_EQ(a.mean_completion_time.center, b.mean_completion_time.center);
  ASSERT_EQ(a.mean_busy_time.size(), b.mean_busy_time.size());
  for (std::size_t j = 0; j < a.mean_busy_time.size(); ++j) {
    EXPECT_EQ(a.mean_busy_time[j], b.mean_busy_time[j]);
  }
}

TEST(SupervisedEngine, EvaluateSupervisedMatchesBatch) {
  const DcsScenario s = scenario_2(ModelFamily::kUniform, 6, 3, 2.0, 1.0, 1.0);
  policy::EvaluationEngineOptions options;
  options.objective = policy::Objective::kMeanExecutionTime;
  const policy::EvaluationEngine engine(s, options);

  std::vector<DtrPolicy> policies;
  for (int l12 = 0; l12 <= 6; ++l12) {
    policies.push_back(policy::make_two_server_policy(l12, 1));
  }
  const std::vector<double> batch = engine.evaluate(policies);
  const policy::SupervisedBatchResult supervised =
      engine.evaluate_supervised(policies);
  EXPECT_TRUE(supervised.supervision.all_succeeded());
  ASSERT_EQ(supervised.values.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(supervised.values[i], batch[i]) << "policy " << i;
  }
}

}  // namespace
}  // namespace agedtr
