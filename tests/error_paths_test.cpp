// Error-path coverage for the numeric kernels the fallback chain leans on:
// every failure mode here must surface as the documented exception type,
// because the resilient evaluator's catch logic dispatches on exactly these
// contracts (ConvergenceError / BudgetExceeded vs InvalidArgument).
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/hyperexponential.hpp"
#include "agedtr/numerics/fft.hpp"
#include "agedtr/numerics/roots.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr {
namespace {

TEST(ErrorPaths, HyperexponentialEmThrowsConvergenceOnDegenerateLikelihood) {
  // ~2000 near-zero samples put the initial EM rates in the thousands; the
  // lone sample at 1.0 then underflows every phase density to exactly zero
  // and the responsibilities' denominator degenerates on the first sweep.
  std::vector<double> samples(2000, 1e-6);
  samples.push_back(1.0);
  EXPECT_THROW(dist::fit_hyperexponential_em(samples, 2),
               ConvergenceError);
}

TEST(ErrorPaths, HyperexponentialEmFitsBenignData) {
  // Control: a well-separated two-mode sample set converges fine.
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back(0.5 + 0.001 * i);
    samples.push_back(5.0 + 0.01 * i);
  }
  const dist::DistPtr fit = dist::fit_hyperexponential_em(samples, 2);
  ASSERT_NE(fit, nullptr);
  EXPECT_NEAR(fit->mean(), 3.25, 0.5);
}

TEST(ErrorPaths, BrentRootThrowsConvergenceWhenIterationsExhausted) {
  const auto f = [](double x) { return x * x * x - 2.0; };
  EXPECT_THROW(static_cast<void>(numerics::brent_root(f, 0.0, 2.0, 1e-15, 0)),
               ConvergenceError);
  // The same bracket with the default budget converges.
  EXPECT_NEAR(numerics::brent_root(f, 0.0, 2.0), 1.2599210498948732, 1e-9);
}

TEST(ErrorPaths, BrentRootRejectsUnbracketedInterval) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW(static_cast<void>(numerics::brent_root(f, -1.0, 1.0)), InvalidArgument);
}

TEST(ErrorPaths, ExpandBracketThrowsConvergenceWithoutSignChange) {
  const auto f = [](double x) { return x * x + 1.0; };  // always positive
  EXPECT_THROW(static_cast<void>(numerics::expand_bracket(f, -1.0, 1.0)), ConvergenceError);
}

TEST(ErrorPaths, ExpandBracketFindsSignChange) {
  const auto f = [](double x) { return x - 100.0; };
  const numerics::Bracket b = numerics::expand_bracket(f, 0.0, 1.0);
  EXPECT_LE(f(b.a) * f(b.b), 0.0);
}

TEST(ErrorPaths, NextPow2RejectsZeroAndOverflow) {
  // next_pow2(0) used to return 1 silently, turning an empty mass vector
  // into a bogus one-cell transform downstream; both degenerate ends now
  // throw instead of wrapping.
  EXPECT_THROW(static_cast<void>(numerics::next_pow2(0)), InvalidArgument);
  constexpr std::size_t kTop =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
  EXPECT_THROW(static_cast<void>(numerics::next_pow2(kTop + 1)),
               InvalidArgument);
  // The in-range edges stay exact.
  EXPECT_EQ(numerics::next_pow2(1), 1u);
  EXPECT_EQ(numerics::next_pow2(kTop - 1), kTop);
  EXPECT_EQ(numerics::next_pow2(kTop), kTop);
}

TEST(ErrorPaths, FftPlanRejectsDegenerateLengths) {
  // Plans exist only for power-of-two lengths >= 2 (an n==1 "transform"
  // has no half-size complex core to run).
  EXPECT_THROW(static_cast<void>(numerics::fft_plan(0)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(numerics::fft_plan(1)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(numerics::fft_plan(12)), InvalidArgument);
}

TEST(ErrorPaths, ParseModelFamilyThrowsInvalidArgumentOnUnknownName) {
  EXPECT_THROW(static_cast<void>(dist::parse_model_family("nope")), InvalidArgument);
  EXPECT_THROW(static_cast<void>(dist::parse_model_family("")), InvalidArgument);
}

TEST(ErrorPaths, ParseModelFamilyAcceptsKnownNames) {
  for (dist::ModelFamily family : dist::all_model_families()) {
    EXPECT_EQ(dist::parse_model_family(dist::model_family_name(family)),
              family);
  }
  EXPECT_EQ(dist::parse_model_family("exponential"),
            dist::ModelFamily::kExponential);
}

}  // namespace
}  // namespace agedtr
