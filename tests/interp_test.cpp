// Interpolation: linear and monotone PCHIP.
#include <gtest/gtest.h>

#include <cmath>

#include "agedtr/numerics/interp.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::numerics {
namespace {

TEST(LinearInterp, ExactAtKnotsAndMidpoints) {
  const LinearInterpolator f({0.0, 1.0, 3.0}, {0.0, 2.0, 6.0});
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f(2.0), 4.0);
  EXPECT_DOUBLE_EQ(f(0.5), 1.0);
}

TEST(LinearInterp, ClampsOutsideRange) {
  const LinearInterpolator f({0.0, 1.0}, {5.0, 7.0});
  EXPECT_DOUBLE_EQ(f(-2.0), 5.0);
  EXPECT_DOUBLE_EQ(f(9.0), 7.0);
}

TEST(LinearInterp, RejectsUnsortedKnots) {
  EXPECT_THROW(LinearInterpolator({0.0, 0.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(LinearInterpolator({1.0, 0.0}, {1.0, 2.0}), InvalidArgument);
}

TEST(LinearInterp, RejectsSizeMismatch) {
  EXPECT_THROW(LinearInterpolator({0.0, 1.0, 2.0}, {1.0, 2.0}),
               InvalidArgument);
}

TEST(PchipInterp, ReproducesKnots) {
  const PchipInterpolator f({0.0, 1.0, 2.0, 4.0}, {1.0, 3.0, 2.0, 5.0});
  EXPECT_NEAR(f(0.0), 1.0, 1e-14);
  EXPECT_NEAR(f(1.0), 3.0, 1e-14);
  EXPECT_NEAR(f(4.0), 5.0, 1e-14);
}

TEST(PchipInterp, PreservesMonotonicity) {
  // Monotone data: the interpolant must not overshoot anywhere.
  const PchipInterpolator f({0.0, 1.0, 2.0, 3.0, 4.0},
                            {0.0, 0.1, 0.5, 0.95, 1.0});
  double prev = -1.0;
  for (double x = 0.0; x <= 4.0; x += 0.01) {
    const double y = f(x);
    EXPECT_GE(y, prev - 1e-12) << "x=" << x;
    EXPECT_GE(y, -1e-12);
    EXPECT_LE(y, 1.0 + 1e-12);
    prev = y;
  }
}

TEST(PchipInterp, LinearDataStaysLinear) {
  const PchipInterpolator f({0.0, 1.0, 2.0, 3.0}, {1.0, 2.0, 3.0, 4.0});
  for (double x = 0.0; x <= 3.0; x += 0.1) {
    EXPECT_NEAR(f(x), 1.0 + x, 1e-12);
  }
}

TEST(PchipInterp, DerivativeMatchesSlopeOnLinearData) {
  const PchipInterpolator f({0.0, 1.0, 2.0}, {0.0, 2.0, 4.0});
  EXPECT_NEAR(f.derivative(0.5), 2.0, 1e-12);
  EXPECT_NEAR(f.derivative(1.5), 2.0, 1e-12);
}

TEST(PchipInterp, DerivativeIsZeroOutsideSupport) {
  const PchipInterpolator f({0.0, 1.0}, {0.0, 1.0});
  EXPECT_DOUBLE_EQ(f.derivative(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(f.derivative(2.0), 0.0);
}

TEST(PchipInterp, TwoKnotsReducesToLinear) {
  const PchipInterpolator f({0.0, 2.0}, {1.0, 5.0});
  EXPECT_NEAR(f(1.0), 3.0, 1e-12);
}

TEST(PchipInterp, ApproximatesSmoothFunction) {
  std::vector<double> x, y;
  for (int i = 0; i <= 20; ++i) {
    x.push_back(static_cast<double>(i) * 0.1);
    y.push_back(std::sin(x.back()));
  }
  const PchipInterpolator f(std::move(x), std::move(y));
  for (double q = 0.05; q < 2.0; q += 0.1) {
    EXPECT_NEAR(f(q), std::sin(q), 1e-3) << "q=" << q;
  }
}

}  // namespace
}  // namespace agedtr::numerics
